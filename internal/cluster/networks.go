package cluster

import (
	"fmt"
	"math/bits"

	"mlvlsi/internal/core"
	"mlvlsi/internal/layout"
	"mlvlsi/internal/track"
)

// bitIndex returns the index of the single set bit of x (the differing
// dimension of two hypercube labels).
func bitIndex(x int) int {
	return bits.TrailingZeros(uint(x))
}

// sameBit attaches both ends of a hypercube-quotient link to the member
// whose index is the differing dimension — the CCC convention, where cycle
// position i handles cube dimension i.
func sameBit(u, v, _ int) (int, int) {
	b := bitIndex(u ^ v)
	return b, b
}

// CCC lays out the n-dimensional cube-connected cycles network (§5.2): the
// quotient is the n-cube in its 2-D product layout, each cluster is an
// n-node cycle strip, and the cube link of dimension i attaches to cycle
// position i at both ends.
func CCC(n, l, nodeSide, workers int) (*layout.Layout, error) {
	cfg, err := CCCConfig(n, l, nodeSide)
	if err != nil {
		return nil, err
	}
	cfg.Workers = workers
	return Build(cfg)
}

// CCCGeometry plans the CCC layout's geometry without realizing wires.
func CCCGeometry(n, l int) (core.Geometry, error) {
	cfg, err := CCCConfig(n, l, 0)
	if err != nil {
		return core.Geometry{}, err
	}
	spec, err := BuildSpec(cfg)
	if err != nil {
		return core.Geometry{}, err
	}
	return core.Plan(spec)
}

// CCCConfig assembles the CCC cluster configuration without realizing it;
// callers may set Workers/Ctx/MaxCells on the result before Build.
func CCCConfig(n, l, nodeSide int) (Config, error) {
	if n < 2 {
		return Config{}, fmt.Errorf("CCC: need n >= 2, got %d", n)
	}
	return Config{
		Name:      fmt.Sprintf("CCC(%d) L=%d", n, l),
		RowFac:    track.Hypercube(n / 2),
		ColFac:    track.Hypercube((n + 1) / 2),
		C:         n,
		Intra:     track.Ring(n),
		AttachRow: sameBit,
		AttachCol: sameBit,
		Label:     func(w, i int) int { return w*n + i },
		L:         l, NodeSide: nodeSide,
	}, nil
}

// ReducedHypercubeConfig assembles the configuration of Ziavras's RH
// network (§5.2): CCC with each n-node cycle replaced by a
// log₂(n)-dimensional hypercube (n a power of two).
func ReducedHypercubeConfig(n, l, nodeSide int) (Config, error) {
	if n < 2 || n&(n-1) != 0 {
		return Config{}, fmt.Errorf("ReducedHypercube: cluster size %d must be a power of two >= 2", n)
	}
	logn := bits.TrailingZeros(uint(n))
	return Config{
		Name:      fmt.Sprintf("RH(%d) L=%d", n, l),
		RowFac:    track.Hypercube(n / 2),
		ColFac:    track.Hypercube((n + 1) / 2),
		C:         n,
		Intra:     track.Hypercube(logn),
		AttachRow: sameBit,
		AttachCol: sameBit,
		Label:     func(w, i int) int { return w*n + i },
		L:         l, NodeSide: nodeSide,
	}, nil
}

// ReducedHypercube lays out Ziavras's RH network; see
// ReducedHypercubeConfig.
func ReducedHypercube(n, l, nodeSide, workers int) (*layout.Layout, error) {
	cfg, err := ReducedHypercubeConfig(n, l, nodeSide)
	if err != nil {
		return nil, err
	}
	cfg.Workers = workers
	return Build(cfg)
}

// digitAttach returns an attachment function for generalized-hypercube
// quotients with the given per-dimension radix r: the link between clusters
// differing in one digit (values a < b) attaches to member b at the a-side
// cluster and member a at the b-side — the swap wiring of HSNs.
func digitAttach(r int) func(u, v, m int) (int, int) {
	return func(u, v, _ int) (int, int) {
		for {
			du, dv := u%r, v%r
			if du != dv {
				return dv, du
			}
			u /= r
			v /= r
		}
	}
}

// HSN lays out an l-level hierarchical swap network (§4.3): the quotient is
// an (lvl−1)-dimensional radix-r generalized hypercube and each cluster is
// an r-node nucleus. nucleus nil means a complete graph K_r.
func HSN(lvl, r, l, nodeSide, workers int, nucleus *track.Collinear) (*layout.Layout, error) {
	cfg, err := HSNConfig(lvl, r, l, nodeSide, nucleus)
	if err != nil {
		return nil, err
	}
	cfg.Workers = workers
	return Build(cfg)
}

// HSNGeometry plans the HSN layout's geometry.
func HSNGeometry(lvl, r, l int) (core.Geometry, error) {
	cfg, err := HSNConfig(lvl, r, l, 0, nil)
	if err != nil {
		return core.Geometry{}, err
	}
	spec, err := BuildSpec(cfg)
	if err != nil {
		return core.Geometry{}, err
	}
	return core.Plan(spec)
}

// HSNConfig assembles the HSN cluster configuration without realizing it.
func HSNConfig(lvl, r, l, nodeSide int, nucleus *track.Collinear) (Config, error) {
	if lvl < 2 || r < 2 {
		return Config{}, fmt.Errorf("HSN: need lvl >= 2 and r >= 2")
	}
	if nucleus == nil {
		nucleus = track.Complete(r)
	}
	dims := lvl - 1
	low := make([]int, dims/2)
	high := make([]int, dims-dims/2)
	for i := range low {
		low[i] = r
	}
	for i := range high {
		high[i] = r
	}
	att := digitAttach(r)
	return Config{
		Name:      fmt.Sprintf("HSN(l=%d,r=%d) L=%d", lvl, r, l),
		RowFac:    track.GeneralizedHypercube(low),
		ColFac:    track.GeneralizedHypercube(high),
		C:         r,
		Intra:     nucleus,
		AttachRow: att,
		AttachCol: att,
		Label:     func(c, i int) int { return c*r + i },
		L:         l, NodeSide: nodeSide,
	}, nil
}

// HHNConfig assembles the hierarchical hypercube network configuration: an
// HSN whose nuclei are 2^m-node hypercubes.
func HHNConfig(lvl, m, l, nodeSide int) (Config, error) {
	cfg, err := HSNConfig(lvl, 1<<uint(m), l, nodeSide, track.Hypercube(m))
	if err != nil {
		return Config{}, err
	}
	cfg.Name = fmt.Sprintf("HHN(l=%d,m=%d) L=%d", lvl, m, l)
	return cfg, nil
}

// HHN lays out a hierarchical hypercube network; see HHNConfig.
func HHN(lvl, m, l, nodeSide, workers int) (*layout.Layout, error) {
	cfg, err := HHNConfig(lvl, m, l, nodeSide)
	if err != nil {
		return nil, err
	}
	cfg.Workers = workers
	return Build(cfg)
}

// butterflyAttach attaches the two copies of a cross-link pair between rows
// w and w ⊕ 2^ℓ: copy 0 leaves the low row at level ℓ and enters the high
// row at level ℓ+1; copy 1 is the mirror.
func butterflyAttach(m int) func(u, v, c int) (int, int) {
	return func(u, v, c int) (int, int) {
		l := bitIndex(u ^ v)
		if c == 0 {
			return l, (l + 1) % m
		}
		return (l + 1) % m, l
	}
}

// Butterfly lays out the wrapped butterfly with 2^m rows and m levels
// (§4.2) as a PN cluster: row clusters of m levels (a cycle strip) over a
// hypercube quotient carrying 2 parallel links per neighboring pair.
func Butterfly(m, l, nodeSide, workers int) (*layout.Layout, error) {
	cfg, err := ButterflyConfig(m, l, nodeSide)
	if err != nil {
		return nil, err
	}
	cfg.Workers = workers
	return Build(cfg)
}

// ButterflyGeometry plans the butterfly layout's geometry.
func ButterflyGeometry(m, l int) (core.Geometry, error) {
	cfg, err := ButterflyConfig(m, l, 0)
	if err != nil {
		return core.Geometry{}, err
	}
	spec, err := BuildSpec(cfg)
	if err != nil {
		return core.Geometry{}, err
	}
	return core.Plan(spec)
}

// ButterflyConfig assembles the wrapped-butterfly cluster configuration
// without realizing it.
func ButterflyConfig(m, l, nodeSide int) (Config, error) {
	if m < 3 {
		return Config{}, fmt.Errorf("Butterfly layout: need m >= 3, got %d", m)
	}
	rows := 1 << uint(m)
	att := butterflyAttach(m)
	return Config{
		Name:         fmt.Sprintf("butterfly(%d) L=%d", m, l),
		RowFac:       track.Hypercube(m / 2),
		ColFac:       track.Hypercube((m + 1) / 2),
		C:            m,
		Intra:        track.Ring(m),
		Multiplicity: 2,
		AttachRow:    att,
		AttachCol:    att,
		Label:        func(w, lev int) int { return lev*rows + w },
		L:            l, NodeSide: nodeSide,
	}, nil
}

// ISNConfig assembles the indirect swap network configuration (see
// DESIGN.md): like the butterfly but with a single cross link per
// neighboring row pair, so the quotient multiplicity is 1 — the property
// §4.3 uses to claim a quarter of the butterfly's area and half its wire
// length.
func ISNConfig(m, l, nodeSide int) (Config, error) {
	if m < 3 {
		return Config{}, fmt.Errorf("ISN layout: need m >= 3, got %d", m)
	}
	rows := 1 << uint(m)
	att := func(u, v, _ int) (int, int) {
		l := bitIndex(u ^ v)
		return l, (l + 1) % m
	}
	return Config{
		Name:      fmt.Sprintf("ISN(%d) L=%d", m, l),
		RowFac:    track.Hypercube(m / 2),
		ColFac:    track.Hypercube((m + 1) / 2),
		C:         m,
		Intra:     track.Ring(m),
		AttachRow: att,
		AttachCol: att,
		Label:     func(w, lev int) int { return lev*rows + w },
		L:         l, NodeSide: nodeSide,
	}, nil
}

// ISN lays out the indirect swap network substitute; see ISNConfig.
func ISN(m, l, nodeSide, workers int) (*layout.Layout, error) {
	cfg, err := ISNConfig(m, l, nodeSide)
	if err != nil {
		return nil, err
	}
	cfg.Workers = workers
	return Build(cfg)
}

// KAryClusterCConfig assembles the k-ary n-cube cluster-c configuration
// (§3.2): the quotient is a k-ary n-cube and each cluster a c-node
// hypercube; the quotient link of dimension d attaches to member d mod c at
// both ends.
func KAryClusterCConfig(k, n, c, l, nodeSide int) (Config, error) {
	if c < 2 || c&(c-1) != 0 {
		return Config{}, fmt.Errorf("KAryClusterC: c=%d must be a power of two >= 2", c)
	}
	logc := bits.TrailingZeros(uint(c))
	attach := func(u, v, _ int) (int, int) {
		d := 0
		for u%k == v%k {
			u /= k
			v /= k
			d++
		}
		return d % c, d % c
	}
	rowFac := track.KAryNCube(k, n/2, false)
	if n/2 == 0 {
		rowFac = &track.Collinear{Name: "trivial", N: 1}
	}
	return Config{
		Name:      fmt.Sprintf("%d-ary %d-cube cluster-%d L=%d", k, n, c, l),
		RowFac:    rowFac,
		ColFac:    track.KAryNCube(k, (n+1)/2, false),
		C:         c,
		Intra:     track.Hypercube(logc),
		AttachRow: attach,
		AttachCol: attach,
		Label:     func(q, i int) int { return q*c + i },
		L:         l, NodeSide: nodeSide,
	}, nil
}

// KAryClusterC lays out a k-ary n-cube cluster-c; see KAryClusterCConfig.
func KAryClusterC(k, n, c, l, nodeSide, workers int) (*layout.Layout, error) {
	cfg, err := KAryClusterCConfig(k, n, c, l, nodeSide)
	if err != nil {
		return nil, err
	}
	cfg.Workers = workers
	return Build(cfg)
}
