package cluster

import (
	"testing"

	"mlvlsi/internal/topology"
)

func TestStarLayout(t *testing.T) {
	for _, tc := range []struct{ n, l int }{{3, 2}, {4, 2}, {4, 4}, {5, 2}, {5, 8}} {
		lay := mustBuild(t)(Star(tc.n, tc.l, 0, 0))
		sameGraph(t, lay, topology.Star(tc.n))
	}
}

func TestPancakeLayout(t *testing.T) {
	for _, tc := range []struct{ n, l int }{{3, 2}, {4, 2}, {5, 4}} {
		lay := mustBuild(t)(Pancake(tc.n, tc.l, 0, 0))
		sameGraph(t, lay, topology.Pancake(tc.n))
	}
}

func TestBubbleSortLayout(t *testing.T) {
	for _, tc := range []struct{ n, l int }{{3, 2}, {4, 2}, {5, 4}} {
		lay := mustBuild(t)(BubbleSort(tc.n, tc.l, 0, 0))
		sameGraph(t, lay, topology.BubbleSort(tc.n))
	}
}

func TestTranspositionLayout(t *testing.T) {
	for _, tc := range []struct{ n, l int }{{3, 2}, {4, 2}, {4, 4}} {
		lay := mustBuild(t)(Transposition(tc.n, tc.l, 0, 0))
		sameGraph(t, lay, topology.Transposition(tc.n))
	}
}

func TestCayleyRejectsBadSizes(t *testing.T) {
	if _, err := Star(2, 2, 0, 0); err == nil {
		t.Error("n=2 accepted")
	}
	if _, err := Star(8, 2, 0, 0); err == nil {
		t.Error("n=8 (5040-node clusters) accepted")
	}
}

func TestCayleyMultilayerShrinks(t *testing.T) {
	a2 := mustBuild(t)(Star(5, 2, 0, 0)).Area()
	a8 := mustBuild(t)(Star(5, 8, 0, 0)).Area()
	if a8 >= a2 {
		t.Errorf("star(5) area did not shrink with layers: %d -> %d", a2, a8)
	}
}

func TestPermutationHelpers(t *testing.T) {
	// reduce/expand round-trip.
	perm := []int{4, 1, 3, 0, 2}
	red := reducePerm(perm[:4], 2)
	want := []int{3, 1, 2, 0}
	for i := range want {
		if red[i] != want[i] {
			t.Fatalf("reducePerm = %v, want %v", red, want)
		}
	}
	back := expandPerm(red, 2)
	for i := range back {
		if back[i] != perm[i] {
			t.Fatalf("expandPerm = %v, want %v", back, perm[:4])
		}
	}
	// midSymbols excludes both copies.
	ms := midSymbols(5, 1, 3)
	if len(ms) != 3 || ms[0] != 0 || ms[1] != 2 || ms[2] != 4 {
		t.Fatalf("midSymbols = %v", ms)
	}
	// midPerm(0) is the sorted order.
	mp := midPerm(0, ms)
	for i := range ms {
		if mp[i] != ms[i] {
			t.Fatalf("midPerm(0) = %v, want %v", mp, ms)
		}
	}
}

func TestSCCLayout(t *testing.T) {
	for _, tc := range []struct{ n, l int }{{4, 2}, {4, 4}, {5, 2}} {
		lay := mustBuild(t)(SCC(tc.n, tc.l, 0, 0))
		sameGraph(t, lay, topology.SCC(tc.n))
	}
}

func TestSCCRejectsBadSizes(t *testing.T) {
	if _, err := SCC(3, 2, 0, 0); err == nil {
		t.Error("n=3 accepted")
	}
	if _, err := SCC(7, 2, 0, 0); err == nil {
		t.Error("n=7 accepted")
	}
}
