// Package bounds provides bisection-width-based lower bounds on layout area
// under the Thompson and multilayer grid models, used to assess how close
// the constructed layouts are to optimal (the paper's §1 claims: within
// 1 + o(1) of the Thompson bound and 2 + o(1) of the multilayer bound for
// butterflies, generalized hypercubes, HSNs, and ISNs).
//
// The bounds are the standard cut arguments: if every bisection of the
// network cuts at least B links, then any 2-layer layout has width and
// height at least B/2-ish and area Ω(B²); with L wiring layers a vertical
// cut line is crossed by at most L wires per unit length, so the area is at
// least (B/L)². We use the trivial forms A ≥ B² (Thompson, two layers ≈ one
// crossing per unit per layer pair) and A ≥ (B/L)² (multilayer), matching
// the "trivial lower bound" the paper compares against.
package bounds

import "math"

// ThompsonAreaLB is the two-layer lower bound (B/2)² · 4 = B²: a vertical
// bisection line of height h is crossed by at most h wires per layer pair,
// so h ≥ B and likewise the width.
func ThompsonAreaLB(bisection int) float64 {
	return float64(bisection) * float64(bisection)
}

// MultilayerAreaLB is the L-layer lower bound (B/⌊L/2⌋ / 2)²·... reduced to
// the paper's trivial form (B/L)²: each unit of cut-line length passes at
// most L wires.
func MultilayerAreaLB(bisection, l int) float64 {
	b := float64(bisection) / float64(l)
	return b * b
}

// MaxWireLB is the standard diameter-based wire-length bound: a network
// with N nodes, degree d and diameter D laid out in area A has a wire of
// length at least (√A/3 − o(√A))/D when N^... We expose the simpler cut
// form: some wire is at least bisection-width/(L·diameter) — only used as
// a sanity floor in experiments, not a tight bound.
func MaxWireLB(bisection, l, diameter int) float64 {
	if diameter == 0 {
		return 0
	}
	return float64(bisection) / float64(l*diameter)
}

// Known bisection widths of the paper's families (standard results).

// BisectionHypercube is N/2 for the binary n-cube.
func BisectionHypercube(n int) int { return 1 << uint(n-1) }

// BisectionKAry is the k-ary n-cube bisection 2·k^(n−1) (k even; odd k has
// a slightly larger constant, we use the even-k form as the bound).
func BisectionKAry(k, n int) int {
	p := 1
	for i := 1; i < n; i++ {
		p *= k
	}
	if k == 2 {
		// Binary torus = hypercube: bisection N/2, not 2·k^{n-1}=N.
		return p
	}
	return 2 * p
}

// BisectionGHC is the radix-r n-dimensional generalized hypercube
// bisection: cutting the most significant digit in half severs
// ⌈r/2⌉·⌊r/2⌋·r^{n-1}·... links: (r²/4)·r^(n−1) for even r.
func BisectionGHC(r, n int) int {
	p := 1
	for i := 1; i < n; i++ {
		p *= r
	}
	return (r / 2) * ((r + 1) / 2) * p
}

// BisectionComplete is ⌈N/2⌉·⌊N/2⌋ for K_N.
func BisectionComplete(n int) int { return (n / 2) * ((n + 1) / 2) }

// BisectionButterfly for the wrapped butterfly with R = 2^m rows: splitting
// the rows on the top-level bit cuts 2 cross links per row pair per
// direction: 2·R... we use the standard 2R bound (R row pairs × 2 links).
func BisectionButterfly(m int) int { return 2 << uint(m) }

// BisectionCCC for CCC(n): splitting the cube's top dimension cuts 2^(n−1)
// cube links.
func BisectionCCC(n int) int { return 1 << uint(n-1) }

// OptimalityRatio is measured area divided by the lower bound (>= 1 for a
// legal layout; the paper's constructions promise small constants).
func OptimalityRatio(area int, lb float64) float64 {
	if lb <= 0 {
		return math.Inf(1)
	}
	return float64(area) / lb
}

// ExactBisection computes the exact bisection width of a small graph by
// exhaustive enumeration of balanced bipartitions (⌊N/2⌋ vs ⌈N/2⌉). It is
// exponential — the limit guards against misuse — and exists to certify the
// closed-form bisection formulas on small instances.
func ExactBisection(n int, links [][2]int, limit int) int {
	if limit <= 0 {
		limit = 20
	}
	if n > limit {
		panic("ExactBisection: graph too large for exhaustive bisection")
	}
	if n < 2 {
		return 0
	}
	half := n / 2
	best := len(links) + 1
	// Enumerate subsets of size `half` containing node 0 (fixing one side
	// halves the work and loses no generality).
	idx := make([]int, half)
	for i := range idx {
		idx[i] = i
	}
	inA := make([]bool, n)
	evaluate := func() {
		for i := range inA {
			inA[i] = false
		}
		for _, v := range idx {
			inA[v] = true
		}
		cut := 0
		for _, lk := range links {
			if inA[lk[0]] != inA[lk[1]] {
				cut++
				if cut >= best {
					return
				}
			}
		}
		if cut < best {
			best = cut
		}
	}
	// Standard combination enumeration with position 0 pinned.
	var rec func(pos, start int)
	rec = func(pos, start int) {
		if pos == half {
			evaluate()
			return
		}
		for v := start; v <= n-(half-pos); v++ {
			idx[pos] = v
			rec(pos+1, v+1)
		}
	}
	if half == 0 {
		return 0
	}
	idx[0] = 0
	rec(1, 1)
	return best
}
