package bounds

import (
	"math"
	"testing"

	"mlvlsi/internal/core"
	"mlvlsi/internal/topology"
)

func TestBisectionFormulasAgainstDefinitions(t *testing.T) {
	// Spot-check the formula values against hand-computable cuts.
	if got := BisectionHypercube(4); got != 8 {
		t.Errorf("hypercube(4) bisection = %d, want 8", got)
	}
	if got := BisectionKAry(4, 2); got != 8 {
		t.Errorf("4-ary 2-cube bisection = %d, want 8", got)
	}
	if got := BisectionKAry(2, 5); got != 16 {
		t.Errorf("2-ary 5-cube bisection = %d, want 16 (N/2)", got)
	}
	if got := BisectionComplete(9); got != 20 {
		t.Errorf("K9 bisection = %d, want ⌊81/4⌋ = 20", got)
	}
	if got := BisectionGHC(4, 2); got != 16 {
		t.Errorf("GHC(4,4) bisection = %d, want 16", got)
	}
	if got := BisectionButterfly(3); got != 16 {
		t.Errorf("butterfly(3) bisection = %d, want 16", got)
	}
	if got := BisectionCCC(5); got != 16 {
		t.Errorf("CCC(5) bisection = %d, want 16", got)
	}
}

func TestCutsActuallyDisconnect(t *testing.T) {
	// Removing the formula-counted links along the canonical cut must
	// disconnect the hypercube into two halves; the count of links across
	// the cut must equal the formula.
	for n := 2; n <= 7; n++ {
		g := topology.Hypercube(n)
		half := g.N / 2
		cut := 0
		for _, lk := range g.Links {
			if (lk.U < half) != (lk.V < half) {
				cut++
			}
		}
		if cut != BisectionHypercube(n) {
			t.Errorf("n=%d: canonical cut %d != formula %d", n, cut, BisectionHypercube(n))
		}
	}
}

func TestKAryCanonicalCut(t *testing.T) {
	for _, tc := range []struct{ k, n int }{{4, 2}, {6, 2}, {4, 3}} {
		g := topology.KAryNCube(tc.k, tc.n)
		half := g.N / 2
		cut := 0
		for _, lk := range g.Links {
			if (lk.U < half) != (lk.V < half) {
				cut++
			}
		}
		// The formula is a lower bound witnessed by the canonical halving.
		if cut != BisectionKAry(tc.k, tc.n) {
			t.Errorf("k=%d n=%d: canonical cut %d != formula %d", tc.k, tc.n, cut, BisectionKAry(tc.k, tc.n))
		}
	}
}

func TestAreaLowerBounds(t *testing.T) {
	if lb := ThompsonAreaLB(10); lb != 100 {
		t.Errorf("Thompson LB = %v, want 100", lb)
	}
	if lb := MultilayerAreaLB(10, 5); lb != 4 {
		t.Errorf("multilayer LB = %v, want 4", lb)
	}
	if lb := MultilayerAreaLB(10, 2); lb != 25 {
		t.Errorf("multilayer LB at L=2 = %v, want 25", lb)
	}
}

func TestLayoutsRespectLowerBounds(t *testing.T) {
	// Every constructed layout's area must be at least the multilayer
	// lower bound, with a sane optimality ratio.
	for _, l := range []int{2, 4, 8} {
		lay, err := core.Hypercube(8, l, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		lb := MultilayerAreaLB(BisectionHypercube(8), l)
		ratio := OptimalityRatio(lay.Area(), lb)
		if ratio < 1 {
			t.Errorf("L=%d: layout area %d below lower bound %.0f", l, lay.Area(), lb)
		}
		if ratio > 200 {
			t.Errorf("L=%d: optimality ratio %.1f implausibly large", l, ratio)
		}
	}
}

func TestOptimalityRatioEdgeCases(t *testing.T) {
	if !math.IsInf(OptimalityRatio(10, 0), 1) {
		t.Error("zero lower bound should give +Inf ratio")
	}
	if OptimalityRatio(50, 25) != 2 {
		t.Error("ratio arithmetic wrong")
	}
}

func TestMaxWireLB(t *testing.T) {
	if MaxWireLB(100, 2, 0) != 0 {
		t.Error("zero diameter should give 0")
	}
	if got := MaxWireLB(100, 2, 5); got != 10 {
		t.Errorf("MaxWireLB = %v, want 10", got)
	}
}

func linksOf(g *topology.Graph) [][2]int {
	out := make([][2]int, len(g.Links))
	for i, lk := range g.Links {
		out[i] = [2]int{lk.U, lk.V}
	}
	return out
}

func TestExactBisectionCertifiesFormulas(t *testing.T) {
	cases := []struct {
		g    *topology.Graph
		want int
	}{
		{topology.Hypercube(3), BisectionHypercube(3)},
		{topology.Hypercube(4), BisectionHypercube(4)},
		{topology.KAryNCube(4, 2), BisectionKAry(4, 2)},
		{topology.Complete(8), BisectionComplete(8)},
		{topology.Complete(9), BisectionComplete(9)},
		{topology.GeneralizedHypercube([]int{4, 4}), BisectionGHC(4, 2)},
	}
	for _, c := range cases {
		got := ExactBisection(c.g.N, linksOf(c.g), 20)
		if got != c.want {
			t.Errorf("%s: exact bisection %d, formula %d", c.g.Name, got, c.want)
		}
	}
}

func TestExactBisectionIsLowerBoundForLargerCuts(t *testing.T) {
	// Odd k tori have slightly larger exact bisections than the even-k
	// formula we use as the (safe) lower bound.
	g := topology.KAryNCube(3, 2)
	exact := ExactBisection(g.N, linksOf(g), 20)
	if exact < BisectionKAry(3, 2) {
		t.Errorf("formula %d exceeds exact %d — not a lower bound", BisectionKAry(3, 2), exact)
	}
}

func TestExactBisectionGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized graph did not panic")
		}
	}()
	ExactBisection(30, nil, 20)
}
