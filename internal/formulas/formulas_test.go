package formulas

import (
	"math"
	"testing"
)

func almost(t *testing.T, got, want float64, what string) {
	t.Helper()
	if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Errorf("%s = %v, want %v", what, got, want)
	}
}

func TestLayerFactor(t *testing.T) {
	almost(t, LayerFactor(2), 4, "LayerFactor(2)")
	almost(t, LayerFactor(8), 64, "LayerFactor(8)")
	almost(t, LayerFactor(3), 8, "LayerFactor(3)")
	almost(t, LayerFactor(5), 24, "LayerFactor(5)")
}

func TestKAryFormulas(t *testing.T) {
	// §3.1 with N=64, k=4, L=4: area 16·64²/(16·16) = 256.
	almost(t, KAryArea(64, 4, 4), 256, "KAryArea")
	almost(t, KAryVolume(64, 4, 4), 1024, "KAryVolume")
	// Odd L uses L²−1: 16·64²/(8·16) = 512.
	almost(t, KAryArea(64, 4, 3), 512, "KAryArea odd L")
}

func TestGHCFormulas(t *testing.T) {
	// §4.1 with r=4, N=16, L=2: area r²N²/(4L²) = 16·256/16 = 256.
	almost(t, GHCArea(16, 4, 2), 256, "GHCArea")
	almost(t, GHCVolume(16, 4, 2), 512, "GHCVolume")
	almost(t, GHCMaxWire(16, 4, 2), 16, "GHCMaxWire")
	almost(t, GHCPathWire(16, 4, 2), 32, "GHCPathWire")
}

func TestButterflyFormulas(t *testing.T) {
	// N=64, L=2: log2 N = 6: area 4·4096/(4·36) = 113.78.
	almost(t, ButterflyArea(64, 2), 4.0*64*64/(4*36), "ButterflyArea")
	almost(t, ButterflyVolume(64, 2), 2*ButterflyArea(64, 2), "ButterflyVolume")
	almost(t, ButterflyMaxWire(64, 2), 2.0*64/(2*6), "ButterflyMaxWire")
	// ISN relations (§4.3).
	almost(t, ISNArea(64, 2), ButterflyArea(64, 2)/4, "ISNArea")
	almost(t, ISNMaxWire(64, 2), ButterflyMaxWire(64, 2)/2, "ISNMaxWire")
}

func TestHSNFormulas(t *testing.T) {
	almost(t, HSNArea(64, 4), 64.0*64/(4*16), "HSNArea")
	almost(t, HSNVolume(64, 4), 4*HSNArea(64, 4), "HSNVolume")
	almost(t, HSNMaxWire(64, 4), 8, "HSNMaxWire")
	almost(t, HSNPathWire(64, 4), 16, "HSNPathWire")
}

func TestHypercubeFormulas(t *testing.T) {
	// §5.1 with N=256, L=2: area 16·65536/(9·4) = 29127.1.
	almost(t, HypercubeArea(256, 2), 16.0*256*256/(9*4), "HypercubeArea")
	almost(t, HypercubeMaxWire(256, 2), 2.0*256/(3*2), "HypercubeMaxWire")
	almost(t, HypercubeVolume(256, 4), 4*HypercubeArea(256, 4), "HypercubeVolume")
}

func TestCCCAndExtraFormulas(t *testing.T) {
	almost(t, CCCArea(64, 2), 16.0*64*64/(9*4*36), "CCCArea")
	almost(t, FoldedHypercubeArea(64, 2), 49.0*64*64/(9*4), "FoldedHypercubeArea")
	almost(t, EnhancedCubeArea(64, 2), 100.0*64*64/(9*4), "EnhancedCubeArea")
	// §5.3's factors relative to the plain hypercube.
	almost(t, FoldedHypercubeArea(64, 2)/HypercubeArea(64, 2), 49.0/16, "folded factor")
	almost(t, EnhancedCubeArea(64, 2)/HypercubeArea(64, 2), 100.0/16, "enhanced factor")
}

func TestGains(t *testing.T) {
	almost(t, FoldingAreaGain(8), 4, "FoldingAreaGain")
	almost(t, DirectAreaGain(8), 16, "DirectAreaGain")
	almost(t, DirectAreaGain(5), 6, "DirectAreaGain odd")
}

// The paper's central comparison: for every family, the direct multilayer
// area gain L²/4 strictly exceeds the folding gain L/2 for L > 2.
func TestDirectBeatsFolding(t *testing.T) {
	for l := 3; l <= 16; l++ {
		if DirectAreaGain(l) <= FoldingAreaGain(l) {
			t.Errorf("L=%d: direct gain %v not above folding gain %v",
				l, DirectAreaGain(l), FoldingAreaGain(l))
		}
	}
}

// Area formulas scale as 1/L² and volume as 1/L across all families.
func TestScalingLaws(t *testing.T) {
	type f2 func(int, int) float64
	families := map[string]f2{
		"hypercube": HypercubeArea,
		"butterfly": ButterflyArea,
		"hsn":       HSNArea,
		"ccc":       CCCArea,
		"folded":    FoldedHypercubeArea,
		"enhanced":  EnhancedCubeArea,
		"isn":       ISNArea,
	}
	for name, fn := range families {
		r := fn(1024, 2) / fn(1024, 8)
		almost(t, r, 16, name+" area 1/L² scaling")
	}
	almost(t, KAryArea(1024, 4, 2)/KAryArea(1024, 4, 8), 16, "kary area scaling")
	almost(t, GHCArea(1024, 4, 2)/GHCArea(1024, 4, 8), 16, "ghc area scaling")
	almost(t, HypercubeVolume(1024, 2)/HypercubeVolume(1024, 8), 4, "volume 1/L scaling")
}
