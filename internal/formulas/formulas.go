// Package formulas encodes every closed-form cost expression the paper
// derives, so experiments can print paper-predicted versus measured values
// side by side. All expressions are leading terms: the paper's results hold
// up to 1 + o(1) as N grows with node sizes held negligible.
package formulas

import "math"

// LayerFactor returns the paper's effective squared-layer divisor: L² for
// even L, L²−1 for odd L (odd layouts split tracks (L+1)/2 : (L−1)/2).
func LayerFactor(l int) float64 {
	if l%2 == 0 {
		return float64(l) * float64(l)
	}
	return float64(l*l - 1)
}

// KAryArea is §3.1: 16N²/(L²k²) for even L, 16N²/((L²−1)k²) for odd.
func KAryArea(n, k, l int) float64 {
	return 16 * float64(n) * float64(n) / (LayerFactor(l) * float64(k*k))
}

// KAryVolume is §3.1: 16N²/(Lk²) (even L) and 16N²L/((L²−1)k²) (odd).
func KAryVolume(n, k, l int) float64 {
	return float64(l) * KAryArea(n, k, l)
}

// KAryMaxWireBound is §3.1's O(N/(Lk²)) bound for folded rows/columns,
// reported with constant 16 (the side length divided by k, which the folded
// construction achieves up to constants).
func KAryMaxWireBound(n, k, l int) float64 {
	return 16 * float64(n) / (float64(l) * float64(k*k))
}

// GHCArea is §4.1: r²N²/(4L²), odd-L variant r²N²/(4(L²−1)).
func GHCArea(n, r, l int) float64 {
	return float64(r*r) * float64(n) * float64(n) / (4 * LayerFactor(l))
}

// GHCVolume is §4.1: r²N²/(4L).
func GHCVolume(n, r, l int) float64 {
	return float64(l) * GHCArea(n, r, l)
}

// GHCMaxWire is §4.1: rN/(2L).
func GHCMaxWire(n, r, l int) float64 {
	return float64(r) * float64(n) / (2 * float64(l))
}

// GHCPathWire is §4.1: rN/L, the maximum total wire length along a
// shortest routing path.
func GHCPathWire(n, r, l int) float64 {
	return float64(r) * float64(n) / float64(l)
}

// ButterflyArea is §4.2: 4N²/(L² log₂²N), odd-L 4N²/((L²−1) log₂²N).
func ButterflyArea(n, l int) float64 {
	lg := math.Log2(float64(n))
	return 4 * float64(n) * float64(n) / (LayerFactor(l) * lg * lg)
}

// ButterflyVolume is §4.2: 4N²/(L log₂²N).
func ButterflyVolume(n, l int) float64 {
	return float64(l) * ButterflyArea(n, l)
}

// ButterflyMaxWire is §4.2: 2N/(L log₂N).
func ButterflyMaxWire(n, l int) float64 {
	return 2 * float64(n) / (float64(l) * math.Log2(float64(n)))
}

// HSNArea is §4.3: N²/(4L²), odd-L N²/(4(L²−1)).
func HSNArea(n, l int) float64 {
	return float64(n) * float64(n) / (4 * LayerFactor(l))
}

// HSNVolume is §4.3: N²/(4L).
func HSNVolume(n, l int) float64 {
	return float64(l) * HSNArea(n, l)
}

// HSNMaxWire is §4.3: N/(2L).
func HSNMaxWire(n, l int) float64 {
	return float64(n) / (2 * float64(l))
}

// HSNPathWire is §4.3: N/L.
func HSNPathWire(n, l int) float64 {
	return float64(n) / float64(l)
}

// ISNArea is §4.3: a quarter of the butterfly area.
func ISNArea(n, l int) float64 {
	return ButterflyArea(n, l) / 4
}

// ISNMaxWire is §4.3: half the butterfly max wire.
func ISNMaxWire(n, l int) float64 {
	return ButterflyMaxWire(n, l) / 2
}

// HypercubeArea is §5.1: 16N²/(9L²).
func HypercubeArea(n, l int) float64 {
	return 16 * float64(n) * float64(n) / (9 * LayerFactor(l))
}

// HypercubeVolume is §5.1: 16N²/(9L).
func HypercubeVolume(n, l int) float64 {
	return float64(l) * HypercubeArea(n, l)
}

// HypercubeMaxWire is §5.1: 2N/(3L).
func HypercubeMaxWire(n, l int) float64 {
	return 2 * float64(n) / (3 * float64(l))
}

// CCCArea is §5.2: 16N²/(9L² log₂²N); reduced hypercubes match.
func CCCArea(n, l int) float64 {
	lg := math.Log2(float64(n))
	return 16 * float64(n) * float64(n) / (9 * LayerFactor(l) * lg * lg)
}

// FoldedHypercubeArea is §5.3: 49N²/(9L²), i.e. a (7N/3L)² square.
func FoldedHypercubeArea(n, l int) float64 {
	return 49 * float64(n) * float64(n) / (9 * LayerFactor(l))
}

// EnhancedCubeArea is §5.3: 100N²/(9L²), i.e. a (10N/3L)² square.
func EnhancedCubeArea(n, l int) float64 {
	return 100 * float64(n) * float64(n) / (9 * LayerFactor(l))
}

// FoldingAreaGain is §2.2's baseline: folding a 2-layer layout into L
// layers divides area by L/2 (volume and wire length unchanged).
func FoldingAreaGain(l int) float64 {
	return float64(l) / 2
}

// DirectAreaGain is the paper's headline: designing directly for L layers
// divides area by L²/4 (L²−1)/4 for odd L).
func DirectAreaGain(l int) float64 {
	return LayerFactor(l) / 4
}
