// Package mlvlsi is a production-quality Go implementation of
//
//	Chi-Hsiang Yeh, Emmanouel A. Varvarigos, Behrooz Parhami,
//	"Multilayer VLSI Layout for Interconnection Networks", ICPP 2000,
//
// the multilayer grid model and the orthogonal multilayer layout scheme for
// interconnection networks. It constructs fully realized, machine-verified
// VLSI layouts — concrete node rectangles and edge-disjoint rectilinear
// wire paths across L wiring layers — for every network family the paper
// treats: k-ary n-cubes and general product networks, binary hypercubes,
// generalized hypercubes, butterflies, cube-connected cycles, reduced
// hypercubes, folded hypercubes, enhanced cubes, hierarchical swap networks
// (HSN), hierarchical hypercube networks (HHN), indirect swap networks
// (ISN), and k-ary n-cube cluster-c PN clusters.
//
// The headline results reproduce constructively: designing directly for L
// layers shrinks layout area by ≈ (L/2)² and volume and maximum wire length
// by ≈ L/2 versus the 2-layer Thompson model, whereas folding a finished
// 2-layer layout (also implemented, as the baseline) only buys L/2 in area
// and nothing in volume or wire length.
//
// Quick start:
//
//	lay, err := mlvlsi.Hypercube(8, mlvlsi.Options{Layers: 8})
//	if err != nil { ... }
//	if v := lay.Verify(); len(v) > 0 { ... }   // legality check
//	fmt.Println(lay.Stats())                   // area, volume, max wire
//
// See EXPERIMENTS.md for the paper-versus-measured results and cmd/paperbench
// for the harness that regenerates them.
package mlvlsi
