package mlvlsi

import (
	"context"
	"errors"
	"fmt"

	"mlvlsi/internal/cluster"
	"mlvlsi/internal/core"
	"mlvlsi/internal/extra"
	"mlvlsi/internal/fold"
	"mlvlsi/internal/generic"
	"mlvlsi/internal/grid"
	"mlvlsi/internal/layout"
	"mlvlsi/internal/par"
	"mlvlsi/internal/render"
	"mlvlsi/internal/route"
	"mlvlsi/internal/sim"
	"mlvlsi/internal/stack"
	"mlvlsi/internal/topology"
	"mlvlsi/internal/track"
)

// Layout is a realized multilayer layout: node rectangles on the active
// layer plus edge-disjoint rectilinear wire paths across L wiring layers.
type Layout = layout.Layout

// Stats bundles a layout's cost measures (area, volume, max wire length…).
type Stats = layout.Stats

// Collinear is a one-dimensional (single-row) layout: the building block of
// the orthogonal scheme. See the Ring/CompleteGraph/HypercubeCollinear
// constructors and Product combinator.
type Collinear = track.Collinear

// Options configures layout construction.
type Options struct {
	// Layers is the number of wiring layers L (>= 2). Zero defaults to 2,
	// the Thompson model. Odd L is legal: the engines split each channel's
	// tracks across ⌈L/2⌉ x-layers and ⌊L/2⌋ y-layers (§2.1's direction
	// discipline), so the odd layer goes to the x direction and area
	// improves by the ⌈L/2⌉ factor rather than L/2.
	Layers int
	// NodeSide fixes the node square side; zero picks the smallest side
	// that fits the node's ports (the paper's minimal node).
	NodeSide int
	// FoldedRows lays k-ary n-cube rows and columns in folded (interleaved)
	// order, cutting the maximum wire length to O(N/(Lk²)) (§3.1).
	FoldedRows bool
	// Workers bounds the fan-out of the parallel build and verify paths:
	// 0 means GOMAXPROCS, 1 forces serial execution. Requests beyond the
	// machine's capacity degrade gracefully to GOMAXPROCS. The constructed
	// layout and all verification results are identical for every value.
	Workers int
	// Context, when non-nil, cancels construction cooperatively: the build
	// checks it between phases and every few wires during realization, and
	// returns an error wrapping ErrCanceled once it is done. Nil means no
	// cancellation.
	Context context.Context
	// MaxCells, when positive, bounds the realized grid volume
	// (width+1)·(height+1)·(L+1); a layout that would exceed it fails fast
	// with a *BudgetError before any wire is realized. Zero means no budget.
	MaxCells int
	// DenseCheckCells tunes the verifier's dense-occupancy threshold (used
	// by VerifyLayout): zero adapts to the layout (the dense bit-grid is
	// used whenever it is no larger than the hash map it replaces), a
	// negative value forces the sparse hash path, and a positive value caps
	// the dense grid's unit-edge slot count. Verification results are
	// identical for every value; only speed and memory differ.
	DenseCheckCells int
	// VerifyMemBytes, when non-zero, caps the verifier's occupancy working
	// set (used by VerifyLayout and VerifyFoldedViolations): a positive
	// value is a byte ceiling across all workers, a negative value forces
	// the tiled rung with its default per-tile budget. When the dense
	// bit-grid would exceed the ceiling, the verifier switches to the tiled
	// streaming rung — the bounding box is partitioned into tiles small
	// enough that each worker's pooled bitset fits the budget, wires are
	// streamed through the tiles they cross, and tile-border edges are
	// reconciled in a final pass. Violation sets are identical on every
	// rung; only memory and speed differ. Zero (the default) applies no
	// ceiling. See grid.CheckOptions.TileBytes for the exact ladder.
	VerifyMemBytes int
	// Observer, when non-nil, receives hierarchical spans over the build
	// and verify phases (placement, routing, realization, verify and their
	// sub-steps) plus typed counters, fanned out to the sinks it was
	// created with — see NewObserver, NewTraceSink, and NewMetricsSink.
	// Nil (the default) disables observation at zero cost: the hot paths
	// stay allocation-free and no instrumentation work happens. The
	// constructed layouts and all verification results are identical with
	// and without an observer.
	Observer *Observer
	// Scratch, when non-nil, selects the arena build path: per-phase
	// allocations are drawn from the scratch's reusable slabs, taking a
	// large build from tens of thousands of allocations to a handful. The
	// constructed layout is byte-identical to the default allocating path
	// and aliases nothing in the scratch, so the scratch may be reused for
	// the next build immediately — but never by two builds concurrently.
	// See NewBuildScratch and DESIGN.md §9 for the ownership contract.
	Scratch *BuildScratch
}

// maxNodeSide bounds Options.NodeSide: a node square beyond 2^20 grid units
// per side overflows the area accounting long before any realistic use.
const maxNodeSide = 1 << 20

func (o Options) layers() int {
	if o.Layers == 0 {
		return 2
	}
	return o.Layers
}

// validate rejects out-of-range Options fields with a *ParamError. All
// constructors and BuildFamily call it before building.
func (o Options) validate() error {
	if o.Layers < 0 {
		return &ParamError{Param: "Layers", Value: o.Layers, Reason: "must be >= 0 (0 defaults to 2)"}
	}
	if o.Layers == 1 {
		return &ParamError{Param: "Layers", Value: o.Layers, Reason: "must be 0 or >= 2: one wiring layer cannot carry both x- and y-runs under the direction discipline"}
	}
	if o.NodeSide < 0 {
		return &ParamError{Param: "NodeSide", Value: o.NodeSide, Reason: "must be >= 0 (0 picks the minimal node)"}
	}
	if o.NodeSide > maxNodeSide {
		return &ParamError{Param: "NodeSide", Value: o.NodeSide, Reason: "exceeds the 2^20 grid-unit ceiling"}
	}
	if o.Workers < 0 {
		return &ParamError{Param: "Workers", Value: o.Workers, Reason: "must be >= 0 (0 means GOMAXPROCS)"}
	}
	if o.MaxCells < 0 {
		return &ParamError{Param: "MaxCells", Value: o.MaxCells, Reason: "must be >= 0 (0 means no budget)"}
	}
	return nil
}

// buildSpec applies the cross-cutting Options (Workers, Context, MaxCells,
// Observer) to an assembled engine spec and realizes it.
func (o Options) buildSpec(spec core.Spec) (*Layout, error) {
	spec.Workers = o.Workers
	spec.Ctx = o.Context
	spec.MaxCells = o.MaxCells
	spec.Obs = o.Observer
	spec.Scratch = o.Scratch.inner()
	return core.Build(spec)
}

// buildCluster does the same for PN-cluster configurations.
func (o Options) buildCluster(cfg cluster.Config) (*Layout, error) {
	cfg.Workers = o.Workers
	cfg.Ctx = o.Context
	cfg.MaxCells = o.MaxCells
	cfg.Obs = o.Observer
	cfg.Scratch = o.Scratch.inner()
	return cluster.Build(cfg)
}

// Violation is one legality failure reported by the verifier: the offending
// wire, the location, and a typed reason code (Violation.Reason formats the
// human-readable cause; Violation.Error the full message).
type Violation = grid.Violation

// VerifyLayout verifies lay under the cross-cutting Options knobs: Workers
// bounds the fan-out, Context cancels cooperatively, DenseCheckCells tunes
// the dense-occupancy threshold, VerifyMemBytes caps the occupancy working
// set (engaging the tiled streaming rung when the dense bit-grid would not
// fit), and Observer (when non-nil) receives a "verify" span plus the
// verifier counters. A nil violation slice with a nil error means the
// layout is legal; the violation set is identical for every Options value.
func VerifyLayout(lay *Layout, o Options) ([]Violation, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	return lay.VerifyOpts(o.Context, grid.CheckOptions{
		Workers:    o.Workers,
		DenseLimit: o.DenseCheckCells,
		TileBytes:  o.VerifyMemBytes,
		Observer:   o.Observer,
	})
}

// Robustness errors surfaced by the build and verify paths.

// ErrCanceled is wrapped by every error returned because an
// Options.Context (or a ctx passed to a *Context function) was done;
// errors.Is(err, ErrCanceled) and errors.Is(err, ctx.Err()) both hold.
var ErrCanceled = par.ErrCanceled

// BudgetError reports a layout whose grid volume exceeds Options.MaxCells.
type BudgetError = layout.BudgetError

// PanicError wraps a panic captured in a parallel build or verify worker:
// the panic is contained and surfaced as an error on the calling goroutine
// with the worker's original stack trace.
type PanicError = par.Panic

// KAryNCube lays out a k-ary n-cube (torus) under the multilayer model
// (§3.1).
func KAryNCube(k, n int, o Options) (*Layout, error) {
	return BuildFamily(FamilySpec{Name: "kary", Params: map[string]int{"k": k, "n": n}}, o)
}

// Mesh lays out an n-dimensional mesh (dims[0] least significant) as a
// product of paths (§3.2). Uniform extents go through the "mesh" registry
// family; mixed extents are validated against the same registry ranges and
// built directly, so both shapes reject bad parameters with the identical
// *ParamError the registry reports.
func Mesh(dims []int, o Options) (*Layout, error) {
	if uniformInts(dims) {
		return BuildFamily(FamilySpec{Name: "mesh", Params: map[string]int{"d": len(dims), "n": dims[0]}}, o)
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	if err := registryRange("mesh", "d", len(dims)); err != nil {
		return nil, err
	}
	for _, n := range dims {
		if err := registryRange("mesh", "n", n); err != nil {
			return nil, err
		}
	}
	return o.buildSpec(core.MeshSpec(dims, o.layers(), o.NodeSide))
}

// Hypercube lays out the binary n-cube with the ⌊2N/3⌋-track collinear
// factors (§5.1).
func Hypercube(n int, o Options) (*Layout, error) {
	return BuildFamily(FamilySpec{Name: "hypercube", Params: map[string]int{"n": n}}, o)
}

// GeneralizedHypercube lays out a mixed-radix generalized hypercube
// (radices[0] least significant) (§4.1). Uniform radices go through the
// "ghc" registry family; mixed radices are validated against the same
// registry ranges and built directly.
func GeneralizedHypercube(radices []int, o Options) (*Layout, error) {
	if uniformInts(radices) {
		return BuildFamily(FamilySpec{Name: "ghc", Params: map[string]int{"r": radices[0], "n": len(radices)}}, o)
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	if err := registryRange("ghc", "n", len(radices)); err != nil {
		return nil, err
	}
	for _, r := range radices {
		if err := registryRange("ghc", "r", r); err != nil {
			return nil, err
		}
	}
	return o.buildSpec(core.GeneralizedHypercubeSpec(radices, o.layers(), o.NodeSide))
}

// FoldedHypercube lays out the hypercube plus its N/2 diameter links
// (§5.3).
func FoldedHypercube(n int, o Options) (*Layout, error) {
	return BuildFamily(FamilySpec{Name: "folded", Params: map[string]int{"n": n}}, o)
}

// EnhancedCube lays out the hypercube plus one pseudo-random extra link per
// node (§5.3); seed selects the random stream. Seeds within the registry's
// integer range go through the "enhanced" family; larger seeds validate n
// against the same registry range and build directly, so every uint64 seed
// keeps working.
func EnhancedCube(n int, seed uint64, o Options) (*Layout, error) {
	if max := registryParam("enhanced", "seed").Max; seed <= uint64(max) {
		return BuildFamily(FamilySpec{Name: "enhanced", Params: map[string]int{"n": n, "seed": int(seed)}}, o)
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	if err := registryRange("enhanced", "n", n); err != nil {
		return nil, err
	}
	spec, err := extra.EnhancedCubeSpec(n, seed, o.layers(), o.NodeSide)
	if err != nil {
		return nil, err
	}
	return o.buildSpec(spec)
}

// CCC lays out the n-dimensional cube-connected cycles network (§5.2).
func CCC(n int, o Options) (*Layout, error) {
	return BuildFamily(FamilySpec{Name: "ccc", Params: map[string]int{"n": n}}, o)
}

// ReducedHypercube lays out Ziavras's RH network with n-node hypercube
// clusters (n a power of two) (§5.2).
func ReducedHypercube(n int, o Options) (*Layout, error) {
	return BuildFamily(FamilySpec{Name: "rh", Params: map[string]int{"n": n}}, o)
}

// HSN lays out an l-level radix-r hierarchical swap network with K_r nuclei
// (§4.3).
func HSN(l, r int, o Options) (*Layout, error) {
	return BuildFamily(FamilySpec{Name: "hsn", Params: map[string]int{"levels": l, "r": r}}, o)
}

// HHN lays out a hierarchical hypercube network: an HSN with 2^m-node
// hypercube nuclei (§4.3).
func HHN(l, m int, o Options) (*Layout, error) {
	return BuildFamily(FamilySpec{Name: "hhn", Params: map[string]int{"levels": l, "m": m}}, o)
}

// Butterfly lays out the wrapped butterfly with 2^m rows and m levels as a
// PN cluster over its hypercube quotient (§4.2).
func Butterfly(m int, o Options) (*Layout, error) {
	return BuildFamily(FamilySpec{Name: "butterfly", Params: map[string]int{"m": m}}, o)
}

// ISN lays out the indirect swap network (see DESIGN.md for the
// substitution notes) (§4.3).
func ISN(m int, o Options) (*Layout, error) {
	return BuildFamily(FamilySpec{Name: "isn", Params: map[string]int{"m": m}}, o)
}

// KAryClusterC lays out a k-ary n-cube cluster-c with c-node hypercube
// clusters (§3.2).
func KAryClusterC(k, n, c int, o Options) (*Layout, error) {
	return BuildFamily(FamilySpec{Name: "clusterc", Params: map[string]int{"k": k, "n": n, "c": c}}, o)
}

// Star lays out the n-dimensional star graph via the last-symbol
// decomposition over a complete-graph quotient (§4.3 extension; see
// DESIGN.md). n! nodes, 3 <= n <= 7.
func Star(n int, o Options) (*Layout, error) {
	return BuildFamily(FamilySpec{Name: "star", Params: map[string]int{"n": n}}, o)
}

// Pancake lays out the n-dimensional pancake graph (§4.3 extension).
func Pancake(n int, o Options) (*Layout, error) {
	return BuildFamily(FamilySpec{Name: "pancake", Params: map[string]int{"n": n}}, o)
}

// BubbleSort lays out the n-dimensional bubble-sort graph (§4.3 extension).
func BubbleSort(n int, o Options) (*Layout, error) {
	return BuildFamily(FamilySpec{Name: "bubblesort", Params: map[string]int{"n": n}}, o)
}

// Transposition lays out the n-dimensional transposition network (§4.3
// extension).
func Transposition(n int, o Options) (*Layout, error) {
	return BuildFamily(FamilySpec{Name: "transposition", Params: map[string]int{"n": n}}, o)
}

// SCC lays out the star-connected cycles network (the paper's future-work
// family, built with the same last-symbol machinery). N = n!·(n−1),
// 4 <= n <= 6.
func SCC(n int, o Options) (*Layout, error) {
	return BuildFamily(FamilySpec{Name: "scc", Params: map[string]int{"n": n}}, o)
}

// Product lays out the Cartesian product of two collinear factor layouts:
// rows wired as rowFac, columns as colFac (§3.2). This is the
// general-purpose entry point for product networks beyond the named
// families.
func Product(name string, rowFac, colFac *Collinear, o Options) (*Layout, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	return o.buildSpec(core.FromFactors(name, rowFac, colFac, o.layers(), o.NodeSide))
}

// Collinear factor constructors, re-exported from the track package.

// Ring returns the 2-track collinear ring layout (§3.1).
func Ring(k int) *Collinear { return track.Ring(k) }

// FoldedRing returns the folded ring ordering with O(1)-length links.
func FoldedRing(k int) *Collinear { return track.FoldedRing(k) }

// PathGraph returns the 1-track collinear path layout.
func PathGraph(n int) *Collinear { return track.Path(n) }

// CompleteGraph returns the strictly optimal ⌊N²/4⌋-track collinear layout
// of K_N (§4.1).
func CompleteGraph(n int) *Collinear { return track.Complete(n) }

// HypercubeCollinear returns the ⌊2N/3⌋-track collinear layout of the
// n-cube (§5.1).
func HypercubeCollinear(n int) *Collinear { return track.Hypercube(n) }

// KAryCollinear returns the 2(kⁿ−1)/(k−1)-track collinear layout of a k-ary
// n-cube (§3.1).
func KAryCollinear(k, n int, folded bool) *Collinear { return track.KAryNCube(k, n, folded) }

// GHCCollinear returns the collinear layout of a mixed-radix generalized
// hypercube (§4.1).
func GHCCollinear(radices []int) *Collinear { return track.GeneralizedHypercube(radices) }

// CombineFactors is the paper's product combinator: interleaves N_H copies
// of g at stride N_H and wires each group of N_H consecutive positions as
// h, using N_H·tracks(g) + tracks(h) tracks.
func CombineFactors(g, h *Collinear) *Collinear { return track.Product(g, h) }

// Layout3D is a stacked layout under the multilayer 3-D grid model of
// §2.2: nodes occupy Boards active layers, each carrying a 2-D multilayer
// layout, with inter-board links as via columns.
type Layout3D = stack.Layout3D

// stackKnobs converts the cross-cutting Options into the stack package's
// knob set. MaxCells bounds the WHOLE stack's planned occupancy.
func (o Options) stackKnobs() stack.Knobs {
	return stack.Knobs{
		NodeSide: o.NodeSide,
		Workers:  o.Workers,
		Ctx:      o.Context,
		MaxCells: o.MaxCells,
		Obs:      o.Observer,
	}
}

// stackErr maps the stack package's typed side failure onto the module's
// *ParamError so callers see one error vocabulary for rejected parameters.
func stackErr(err error) error {
	var se *stack.SideError
	if errors.As(err, &se) {
		return &ParamError{Param: "NodeSide", Value: se.Got,
			Reason: fmt.Sprintf("cannot host the stack's elevator columns, needs >= %d", se.Need)}
	}
	return err
}

// Hypercube3D lays out the binary n-cube in the 3-D model with nz
// dimensions across boards (2^nz active layers). All cross-cutting Options
// apply (MaxCells budgets the whole stack); FoldedRows has no meaning for
// the binary cube and is rejected with a *ParamError.
func Hypercube3D(n, nz int, o Options) (*Layout3D, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	if o.FoldedRows {
		return nil, &ParamError{Param: "FoldedRows", Value: 1,
			Reason: "has no effect on the binary hypercube; it selects the folded k-ary ordering (use KAryNCube3D)"}
	}
	lay, err := stack.Hypercube3D(n, nz, o.layers(), o.stackKnobs())
	if err != nil {
		return nil, stackErr(err)
	}
	return lay, nil
}

// KAryNCube3D lays out a k-ary n-cube in the 3-D model with nz dimensions
// across boards (k^nz active layers). All cross-cutting Options apply
// (MaxCells budgets the whole stack).
func KAryNCube3D(k, n, nz int, o Options) (*Layout3D, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	lay, err := stack.KAryNCube3D(k, n, nz, o.layers(), o.FoldedRows, o.stackKnobs())
	if err != nil {
		return nil, stackErr(err)
	}
	return lay, nil
}

// GenericGraph re-exports the topology graph type for GenericLayout.
type GenericGraph = topology.Graph

// NewGraph creates an empty graph for GenericLayout; add links with
// AddLink.
func NewGraph(name string, n int) *GenericGraph { return topology.New(name, n) }

// GenericLayout routes an arbitrary graph under the multilayer grid model
// using the §2.3 grid scheme (every link as a bent edge with optimally
// shared tracks). Slower-area than the structured constructions — see
// experiment E18 — but works for any topology. All cross-cutting Options
// (Workers, Context, MaxCells, Observer) apply.
func GenericLayout(g *GenericGraph, o Options) (*Layout, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	return generic.Layout(g, generic.Config{
		L:        o.layers(),
		NodeSide: o.NodeSide,
		Workers:  o.Workers,
		Ctx:      o.Context,
		MaxCells: o.MaxCells,
		Obs:      o.Observer,
	})
}

// Baselines (§2.2).

// Fold accordion-folds a 2-layer layout into l layers (l even): area drops
// by ≈ l/2 while volume and wire lengths stay put — the baseline the paper
// improves on.
func Fold(lay *Layout, l int) (*Layout, error) { return fold.Fold(lay, l) }

// VerifyFoldedViolations checks a folded layout (terminal checks skipped:
// folded nodes sit on raised active layers) and reports the findings in
// VerifyLayout's shape: a typed violation slice plus an error for
// cancellation. The cross-cutting Options knobs apply exactly as in
// VerifyLayout — Workers, Context, DenseCheckCells, VerifyMemBytes,
// Observer.
func VerifyFoldedViolations(lay *Layout, o Options) ([]Violation, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	return fold.VerifyOpts(o.Context, lay, grid.CheckOptions{
		Workers:    o.Workers,
		DenseLimit: o.DenseCheckCells,
		TileBytes:  o.VerifyMemBytes,
		Observer:   o.Observer,
	})
}

// VerifyFolded checks a folded layout with default options and joins all
// violations with errors.Join; errors.As with *grid.Violation (or unwrapping
// the join) recovers the individual findings. VerifyFoldedViolations is the
// typed, tunable form.
func VerifyFolded(lay *Layout) error {
	v, err := VerifyFoldedViolations(lay, Options{})
	if err != nil {
		return err
	}
	if len(v) == 0 {
		return nil
	}
	errs := make([]error, len(v))
	for i := range v {
		errs[i] = v[i]
	}
	return errors.Join(errs...)
}

// FoldStats measures a folded layout.
func FoldStats(lay *Layout) fold.Stats { return fold.Measure(lay) }

// Routing and simulation.

// MaxPathWire returns the maximum total wire length along hop-shortest
// routes (claim (4) of §2.2); sources <= 0 examines all sources.
func MaxPathWire(lay *Layout, sources int) int {
	m, _ := MaxPathWireContext(nil, lay, sources)
	return m
}

// MaxPathWireContext is MaxPathWire with cooperative cancellation: once ctx
// is done the sweep stops and returns an error wrapping ErrCanceled. A nil
// ctx means no cancellation.
func MaxPathWireContext(ctx context.Context, lay *Layout, sources int) (int, error) {
	return route.MaxPathWireCtx(ctx, lay, sources, 0)
}

// AveragePathWire returns the mean total wire length along hop-shortest
// routes.
func AveragePathWire(lay *Layout, sources int) float64 {
	avg, _ := AveragePathWireContext(nil, lay, sources)
	return avg
}

// AveragePathWireContext is AveragePathWire with cooperative cancellation,
// mirroring MaxPathWireContext.
func AveragePathWireContext(ctx context.Context, lay *Layout, sources int) (float64, error) {
	return route.AveragePathWireCtx(ctx, lay, sources, 0)
}

// SimConfig configures the wire-delay simulator.
type SimConfig = sim.Config

// SimFaultPlan degrades the simulated network with dead nodes and links —
// explicit, seeded-random, or both — so fault-tolerance experiments can
// measure delivered vs. dropped traffic. Set it on SimConfig.Faults.
type SimFaultPlan = sim.FaultPlan

// SimResult reports simulated latency statistics.
type SimResult = sim.Result

// SimPattern selects a traffic pattern; SimSwitching a flow-control
// discipline.
type (
	SimPattern   = sim.Pattern
	SimSwitching = sim.Switching
)

// Traffic patterns and switching disciplines for Simulate.
const (
	RandomPairs   = sim.RandomPairs
	Permutation   = sim.Permutation
	BitComplement = sim.BitComplement

	StoreAndForward = sim.StoreAndForward
	CutThrough      = sim.CutThrough
)

// Simulate runs store-and-forward message traffic over the layout with
// wire-length-proportional link delays.
func Simulate(lay *Layout, cfg SimConfig) SimResult { return sim.Run(lay, cfg) }

// Rendering.

// RenderCollinear draws a collinear layout as ASCII art (Figures 2-4).
func RenderCollinear(c *Collinear, pitch int) string { return render.Collinear(c, pitch) }

// RenderSVG exports a realized layout as an SVG document.
func RenderSVG(lay *Layout, scale int) string { return render.SVG(lay, scale) }

// RenderRecursiveGrid draws the Figure-1 schematic of the recursive grid
// layout scheme.
func RenderRecursiveGrid(rows, cols int) string { return render.RecursiveGridSchematic(rows, cols) }
