package mlvlsi

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"mlvlsi/internal/obs"
)

// batchRequests returns a mixed request set: several families, one request
// with explicit geometry, so consecutive builds on the shared scratch have
// different shapes.
func batchRequests() []BuildRequest {
	return []BuildRequest{
		{Family: FamilySpec{Name: "hypercube"}},
		{Family: FamilySpec{Name: "kary"}},
		{Family: FamilySpec{Name: "mesh"}},
		{Family: FamilySpec{Name: "ccc"}},
		{Family: FamilySpec{Name: "hypercube", Params: map[string]int{"n": 6}}, Layers: 4},
		{Family: FamilySpec{Name: "folded"}},
	}
}

// TestBuildBatchMatchesSequential: a batch must return, item for item,
// exactly what sequential BuildSpec calls return — the shared scratch is an
// implementation detail, invisible in the results.
func TestBuildBatchMatchesSequential(t *testing.T) {
	reqs := batchRequests()
	res := BuildBatch(context.Background(), reqs, BatchOptions{})
	if len(res) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(res), len(reqs))
	}
	for i, r := range reqs {
		want, err := BuildSpec(context.Background(), r)
		if err != nil {
			t.Fatalf("item %d: sequential build: %v", i, err)
		}
		if res[i].Err != nil {
			t.Fatalf("item %d: batch error: %v", i, res[i].Err)
		}
		if !reflect.DeepEqual(want, res[i].Layout) {
			t.Errorf("item %d: batch layout differs from sequential build", i)
		}
	}
}

// TestBuildBatchPerItemErrors: one bad request must not fail the batch, and
// each failure keeps the same typed error the sequential API reports.
func TestBuildBatchPerItemErrors(t *testing.T) {
	reqs := []BuildRequest{
		{Family: FamilySpec{Name: "hypercube"}},
		{Family: FamilySpec{Name: "no-such-family"}},
		{Family: FamilySpec{Name: "hypercube"}, MaxCells: 10},
		{Family: FamilySpec{Name: "kary"}},
	}
	res := BuildBatch(context.Background(), reqs, BatchOptions{})
	if res[0].Err != nil || res[0].Layout == nil {
		t.Errorf("item 0: got (%v, %v), want a layout", res[0].Layout, res[0].Err)
	}
	var pe *ParamError
	if !errors.As(res[1].Err, &pe) {
		t.Errorf("item 1: err = %v (%T), want *ParamError", res[1].Err, res[1].Err)
	}
	var be *BudgetError
	if !errors.As(res[2].Err, &be) {
		t.Errorf("item 2: err = %v (%T), want *BudgetError", res[2].Err, res[2].Err)
	}
	if res[3].Err != nil || res[3].Layout == nil {
		t.Errorf("item 3: got (%v, %v), want a layout (bad neighbors must not leak)", res[3].Layout, res[3].Err)
	}
	for i, r := range res {
		if (r.Layout != nil) == (r.Err != nil) {
			t.Errorf("item %d: exactly one of Layout/Err must be set, got (%v, %v)", i, r.Layout, r.Err)
		}
	}
}

// TestBatchCancelMarksRemaining: a canceled context marks every unprocessed
// item with the typed cancellation error instead of building it.
func TestBatchCancelMarksRemaining(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := batchRequests()
	for name, res := range map[string][]BatchResult{
		"BuildBatch":  BuildBatch(ctx, reqs, BatchOptions{}),
		"VerifyBatch": VerifyBatch(ctx, reqs, BatchOptions{}),
	} {
		if len(res) != len(reqs) {
			t.Fatalf("%s: got %d results for %d requests", name, len(res), len(reqs))
		}
		for i, r := range res {
			if !errors.Is(r.Err, ErrCanceled) {
				t.Errorf("%s item %d: err = %v, want ErrCanceled", name, i, r.Err)
			}
			if r.Layout != nil || r.Violations != nil {
				t.Errorf("%s item %d: canceled item carries results", name, i)
			}
		}
	}
}

// TestVerifyBatchSemantics: every default-parameter family builds a legal
// layout, so VerifyBatch must report empty violation sets and nil errors —
// while bad items keep their typed errors and never produce a violation set.
func TestVerifyBatchSemantics(t *testing.T) {
	reqs := append(batchRequests(), BuildRequest{Family: FamilySpec{Name: "no-such-family"}})
	ob := NewObserver()
	res := VerifyBatch(context.Background(), reqs, BatchOptions{Observer: ob})
	for i := 0; i < len(batchRequests()); i++ {
		if res[i].Err != nil {
			t.Errorf("item %d: err = %v", i, res[i].Err)
		}
		if len(res[i].Violations) != 0 {
			t.Errorf("item %d: %d violations on a legal construction", i, len(res[i].Violations))
		}
		if res[i].Layout != nil {
			t.Errorf("item %d: transient layout escaped the pipeline", i)
		}
	}
	last := res[len(reqs)-1]
	var pe *ParamError
	if !errors.As(last.Err, &pe) {
		t.Errorf("bad item: err = %v (%T), want *ParamError", last.Err, last.Err)
	}
	// The pipeline reuses pipelineDepth+1 transient scratches across the
	// successful builds: every build after the first few is a reuse, and the
	// observer must have seen them.
	if got := ob.Snapshot().Counts[obs.ScratchReuses]; got < int64(len(reqs)-1-(pipelineDepth+1)) {
		t.Errorf("scratch_reuses = %d, want >= %d", got, len(reqs)-1-(pipelineDepth+1))
	}
}

// buildPanicSink panics while the Nth per-build root span is delivered —
// the only place a test can raise a panic inside one batch item's build
// from outside the engine (family construction itself never panics on valid
// input, and the engine converts its own worker panics to errors before
// they reach the batch layer).
type buildPanicSink struct{ builds, target int }

func (s *buildPanicSink) SpanEnd(rec obs.SpanRecord) {
	if rec.Name == "build" {
		s.builds++
		if s.builds == s.target {
			panic("injected batch fault")
		}
	}
}

func (s *buildPanicSink) Flush(obs.Metrics) {}

// TestBatchContainsPanics: a panic raised while one item builds surfaces as
// that item's *PanicError; the other items still build.
func TestBatchContainsPanics(t *testing.T) {
	reqs := []BuildRequest{
		{Family: FamilySpec{Name: "hypercube"}},
		{Family: FamilySpec{Name: "kary"}},
		{Family: FamilySpec{Name: "mesh"}},
	}
	for name, run := range map[string]func(context.Context, []BuildRequest, BatchOptions) []BatchResult{
		"BuildBatch":  BuildBatch,
		"VerifyBatch": VerifyBatch,
	} {
		ob := NewObserver(&buildPanicSink{target: 2})
		res := run(context.Background(), reqs, BatchOptions{Observer: ob})
		var p *PanicError
		if !errors.As(res[1].Err, &p) {
			t.Fatalf("%s item 1: err = %v (%T), want *PanicError", name, res[1].Err, res[1].Err)
		}
		if p.Value != "injected batch fault" {
			t.Errorf("%s item 1: panic value %v", name, p.Value)
		}
		for _, i := range []int{0, 2} {
			if res[i].Err != nil {
				t.Errorf("%s item %d: neighbor of panicking item failed: %v", name, i, res[i].Err)
			}
		}
	}
}

// BenchmarkBuildBatch and BenchmarkBuildSequential are the batch acceptance
// pair: the same 64 mixed requests through BuildBatch (one shared scratch)
// and through 64 independent BuildSpec calls (the legacy path). Run with
// -benchmem; BENCH_8.json records both at 1 and 4 workers.
func benchReqs() []BuildRequest {
	reqs := make([]BuildRequest, 64)
	families := []string{"hypercube", "kary", "mesh", "ccc", "folded", "enhanced", "ghc", "rh"}
	for i := range reqs {
		reqs[i] = BuildRequest{Family: FamilySpec{Name: families[i%len(families)]}}
		if i%2 == 1 {
			reqs[i].Layers = 4
		}
	}
	return reqs
}

func BenchmarkBuildBatch(b *testing.B) {
	reqs := benchReqs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := BuildBatch(context.Background(), reqs, BatchOptions{Workers: 1})
		for j := range res {
			if res[j].Err != nil {
				b.Fatal(res[j].Err)
			}
		}
	}
}

func BenchmarkBuildSequential(b *testing.B) {
	reqs := benchReqs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range reqs {
			r := reqs[j]
			r.Workers = 1
			if _, err := BuildSpec(context.Background(), r); err != nil {
				b.Fatal(err)
			}
		}
	}
}
