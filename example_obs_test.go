package mlvlsi_test

import (
	"fmt"

	"mlvlsi"
)

// ExampleOptions_observer attaches an in-memory metrics sink to a build and
// verify run. The same Observer can feed a TraceSink writing Chrome-trace
// JSON (see the -trace flag on the command-line tools); a nil Observer —
// the default — costs nothing.
func ExampleOptions_observer() {
	sink := mlvlsi.NewMetricsSink()
	o := mlvlsi.Options{Layers: 4, Observer: mlvlsi.NewObserver(sink)}

	lay, err := mlvlsi.Hypercube(6, o)
	if err != nil {
		fmt.Println(err)
		return
	}
	if _, err := mlvlsi.VerifyLayout(lay, o); err != nil {
		fmt.Println(err)
		return
	}
	m := o.Observer.Flush()

	_, sawBuild := sink.Span("build")
	_, sawVerify := sink.Span("verify")
	fmt.Println("spans recorded:", sawBuild && sawVerify)
	fmt.Println("wires realized:", m.Get(mlvlsi.CounterWiresRealized) == int64(len(lay.Wires)))
	fmt.Println("dense checks:", m.Get(mlvlsi.CounterDenseChecks))
	// Output:
	// spans recorded: true
	// wires realized: true
	// dense checks: 1
}
