package mlvlsi

import (
	"reflect"
	"testing"

	"mlvlsi/internal/fault"
)

// TestArenaDifferentialAllFamilies is the acceptance differential for the
// arena build path: for every registered family at its default parameters,
// the layout built through a shared scratch must be deep-equal to the legacy
// map-path layout — wires, nodes, stats, memory footprint. One scratch
// serves all families in sequence, so slabs sized by one topology are reused
// (and re-sliced) by the next; any stale-state or under-reset bug shows up
// as a diff. The content key needs no separate assertion: Key is derived
// from the request, never from the built bytes, so equal requests share a
// key by construction and this test proves the bytes behind that key match.
func TestArenaDifferentialAllFamilies(t *testing.T) {
	scratch := NewBuildScratch()
	for _, fam := range Families() {
		want, err := BuildFamily(FamilySpec{Name: fam.Name}, Options{})
		if err != nil {
			t.Fatalf("%s: legacy build: %v", fam.Name, err)
		}
		got, err := BuildFamily(FamilySpec{Name: fam.Name}, Options{Scratch: scratch})
		if err != nil {
			t.Fatalf("%s: arena build: %v", fam.Name, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: arena layout differs from legacy", fam.Name)
		}
		if want.Stats() != got.Stats() {
			t.Errorf("%s: stats differ: legacy %v, arena %v", fam.Name, want.Stats(), got.Stats())
		}
		if want.MemBytes() != got.MemBytes() {
			t.Errorf("%s: mem bytes differ: legacy %d, arena %d", fam.Name, want.MemBytes(), got.MemBytes())
		}
	}
}

// TestChaosSweepArenaBuilt repeats the metamorphic chaos sweep on
// arena-built layouts: every fault class injected into every family's
// scratch-built layout must still be flagged by both verifier paths. This
// pins that the arena path changes where layout bytes come from, not what
// the verifiers can see in them.
func TestChaosSweepArenaBuilt(t *testing.T) {
	scratch := NewBuildScratch()
	for _, fam := range Families() {
		lay, err := BuildFamily(FamilySpec{Name: fam.Name}, Options{Scratch: scratch})
		if err != nil {
			t.Fatalf("%s: build: %v", fam.Name, err)
		}
		for _, workers := range []int{1, 4} {
			if err := fault.SelfTest(lay, 1, workers); err != nil {
				t.Errorf("%s (workers=%d): %v", fam.Name, workers, err)
			}
		}
	}
}
