// Integration sweep: every family in the public API builds, strictly
// verifies (legality + Thompson-strict node clearance for 2-D layouts), and
// scales sanely across layer counts. This is the repository's end-to-end
// safety net on top of the per-package graph-exactness tests.
package mlvlsi_test

import (
	"testing"

	"mlvlsi"
)

func TestIntegrationSweepAllFamiliesAllLayers(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep is slow")
	}
	builders := []struct {
		name string
		mk   func(o mlvlsi.Options) (*mlvlsi.Layout, error)
	}{
		{"hypercube(6)", func(o mlvlsi.Options) (*mlvlsi.Layout, error) { return mlvlsi.Hypercube(6, o) }},
		{"4-ary 3-cube", func(o mlvlsi.Options) (*mlvlsi.Layout, error) { return mlvlsi.KAryNCube(4, 3, o) }},
		{"5-ary 2-cube folded", func(o mlvlsi.Options) (*mlvlsi.Layout, error) {
			o.FoldedRows = true
			return mlvlsi.KAryNCube(5, 2, o)
		}},
		{"GHC(4,4)", func(o mlvlsi.Options) (*mlvlsi.Layout, error) {
			return mlvlsi.GeneralizedHypercube([]int{4, 4}, o)
		}},
		{"GHC(2,3,4)", func(o mlvlsi.Options) (*mlvlsi.Layout, error) {
			return mlvlsi.GeneralizedHypercube([]int{2, 3, 4}, o)
		}},
		{"folded 6-cube", func(o mlvlsi.Options) (*mlvlsi.Layout, error) { return mlvlsi.FoldedHypercube(6, o) }},
		{"enhanced 5-cube", func(o mlvlsi.Options) (*mlvlsi.Layout, error) { return mlvlsi.EnhancedCube(5, 3, o) }},
		{"CCC(4)", func(o mlvlsi.Options) (*mlvlsi.Layout, error) { return mlvlsi.CCC(4, o) }},
		{"RH(4)", func(o mlvlsi.Options) (*mlvlsi.Layout, error) { return mlvlsi.ReducedHypercube(4, o) }},
		{"HSN(3,4)", func(o mlvlsi.Options) (*mlvlsi.Layout, error) { return mlvlsi.HSN(3, 4, o) }},
		{"HHN(2,2)", func(o mlvlsi.Options) (*mlvlsi.Layout, error) { return mlvlsi.HHN(2, 2, o) }},
		{"butterfly(4)", func(o mlvlsi.Options) (*mlvlsi.Layout, error) { return mlvlsi.Butterfly(4, o) }},
		{"ISN(4)", func(o mlvlsi.Options) (*mlvlsi.Layout, error) { return mlvlsi.ISN(4, o) }},
		{"4-ary 2-cube cluster-4", func(o mlvlsi.Options) (*mlvlsi.Layout, error) {
			return mlvlsi.KAryClusterC(4, 2, 4, o)
		}},
		{"star(4)", func(o mlvlsi.Options) (*mlvlsi.Layout, error) { return mlvlsi.Star(4, o) }},
		{"pancake(4)", func(o mlvlsi.Options) (*mlvlsi.Layout, error) { return mlvlsi.Pancake(4, o) }},
		{"bubblesort(4)", func(o mlvlsi.Options) (*mlvlsi.Layout, error) { return mlvlsi.BubbleSort(4, o) }},
		{"transposition(4)", func(o mlvlsi.Options) (*mlvlsi.Layout, error) { return mlvlsi.Transposition(4, o) }},
		{"SCC(4)", func(o mlvlsi.Options) (*mlvlsi.Layout, error) { return mlvlsi.SCC(4, o) }},
	}
	for _, b := range builders {
		prevArea := 0
		for _, l := range []int{2, 3, 4, 8} {
			lay, err := b.mk(mlvlsi.Options{Layers: l})
			if err != nil {
				t.Fatalf("%s L=%d: %v", b.name, l, err)
			}
			if v := lay.VerifyStrict(); len(v) > 0 {
				t.Fatalf("%s L=%d: %v", b.name, l, v[0])
			}
			s := lay.Stats()
			if s.Area <= 0 || s.MaxWire <= 0 || s.Links == 0 {
				t.Fatalf("%s L=%d: degenerate stats %+v", b.name, l, s)
			}
			if prevArea > 0 && s.Area > prevArea {
				t.Errorf("%s: area grew from L increase: %d -> %d at L=%d", b.name, prevArea, s.Area, l)
			}
			prevArea = s.Area
		}
	}
}
