package mlvlsi

import (
	"fmt"
	"sort"

	"mlvlsi/internal/cluster"
	"mlvlsi/internal/core"
	"mlvlsi/internal/extra"
	"mlvlsi/internal/layout"
)

// ParamError reports a rejected construction parameter: an Options field out
// of range, an unknown family or parameter name, or a family parameter
// outside its documented range.
type ParamError struct {
	Family string // empty for Options-level errors
	Param  string
	Value  int
	Reason string
}

func (e *ParamError) Error() string {
	if e.Family == "" {
		return fmt.Sprintf("mlvlsi: Options.%s = %d %s", e.Param, e.Value, e.Reason)
	}
	if e.Param == "" {
		return fmt.Sprintf("mlvlsi: family %q %s", e.Family, e.Reason)
	}
	return fmt.Sprintf("mlvlsi: family %q parameter %s = %d %s", e.Family, e.Param, e.Value, e.Reason)
}

// ParamSpec documents one integer parameter of a layout family: its
// inclusive range, the value BuildFamily substitutes when the parameter is
// omitted, and a one-line description.
type ParamSpec struct {
	Name     string
	Min, Max int
	Default  int
	Doc      string
}

// FamilyInfo describes one registered layout family.
type FamilyInfo struct {
	// Name is the registry key BuildFamily matches on.
	Name string
	// Doc is a one-line description with the paper section.
	Doc string
	// Params lists the family's parameters in canonical order.
	Params []ParamSpec

	build func(p map[string]int, o Options) (*layout.Layout, error)
}

// FamilySpec names a family and assigns its parameters; parameters omitted
// from Params take their registry defaults.
type FamilySpec struct {
	Name   string
	Params map[string]int
}

// powerOfTwo reports whether v is a power of two >= 2.
func powerOfTwo(v int) bool { return v >= 2 && v&(v-1) == 0 }

// families is the registry backing Families and BuildFamily. Ranges reflect
// the constraints of the underlying constructors (e.g. the last-symbol
// Cayley machinery needs 3 <= n <= 7) plus practical size ceilings; defaults
// are small enough that every family builds in well under a second.
var families = []FamilyInfo{
	{
		Name: "hypercube",
		Doc:  "binary n-cube with the ⌊2N/3⌋-track collinear factors (§5.1)",
		Params: []ParamSpec{
			{Name: "n", Min: 1, Max: 20, Default: 4, Doc: "dimension; N = 2^n nodes"},
		},
		build: func(p map[string]int, o Options) (*layout.Layout, error) {
			return o.buildSpec(core.HypercubeSpec(p["n"], o.layers(), o.NodeSide))
		},
	},
	{
		Name: "kary",
		Doc:  "k-ary n-cube torus; Options.FoldedRows selects the folded-ring ordering (§3.1)",
		Params: []ParamSpec{
			{Name: "k", Min: 2, Max: 64, Default: 3, Doc: "radix per dimension"},
			{Name: "n", Min: 1, Max: 8, Default: 2, Doc: "dimensions; N = k^n nodes"},
		},
		build: func(p map[string]int, o Options) (*layout.Layout, error) {
			return o.buildSpec(core.KAryNCubeSpec(p["k"], p["n"], o.layers(), o.FoldedRows, o.NodeSide))
		},
	},
	{
		Name: "ghc",
		Doc:  "uniform generalized hypercube: n dimensions of radix r (§4.1)",
		Params: []ParamSpec{
			{Name: "r", Min: 2, Max: 32, Default: 3, Doc: "radix per dimension"},
			{Name: "n", Min: 1, Max: 8, Default: 2, Doc: "dimensions; N = r^n nodes"},
		},
		build: func(p map[string]int, o Options) (*layout.Layout, error) {
			radices := make([]int, p["n"])
			for i := range radices {
				radices[i] = p["r"]
			}
			return o.buildSpec(core.GeneralizedHypercubeSpec(radices, o.layers(), o.NodeSide))
		},
	},
	{
		Name: "mesh",
		Doc:  "uniform d-dimensional mesh of extent n per dimension (§3.2)",
		Params: []ParamSpec{
			{Name: "d", Min: 1, Max: 8, Default: 2, Doc: "dimensions"},
			{Name: "n", Min: 2, Max: 64, Default: 3, Doc: "extent per dimension; N = n^d nodes"},
		},
		build: func(p map[string]int, o Options) (*layout.Layout, error) {
			dims := make([]int, p["d"])
			for i := range dims {
				dims[i] = p["n"]
			}
			return o.buildSpec(core.MeshSpec(dims, o.layers(), o.NodeSide))
		},
	},
	{
		Name: "folded",
		Doc:  "folded hypercube: n-cube plus N/2 diameter links (§5.3)",
		Params: []ParamSpec{
			{Name: "n", Min: 1, Max: 16, Default: 4, Doc: "dimension; N = 2^n nodes"},
		},
		build: func(p map[string]int, o Options) (*layout.Layout, error) {
			spec, err := extra.FoldedHypercubeSpec(p["n"], o.layers(), o.NodeSide)
			if err != nil {
				return nil, err
			}
			return o.buildSpec(spec)
		},
	},
	{
		Name: "enhanced",
		Doc:  "enhanced cube: n-cube plus one pseudo-random link per node (§5.3)",
		Params: []ParamSpec{
			{Name: "n", Min: 1, Max: 16, Default: 4, Doc: "dimension; N = 2^n nodes"},
			{Name: "seed", Min: 0, Max: 1 << 30, Default: 1, Doc: "random-stream seed"},
		},
		build: func(p map[string]int, o Options) (*layout.Layout, error) {
			spec, err := extra.EnhancedCubeSpec(p["n"], uint64(p["seed"]), o.layers(), o.NodeSide)
			if err != nil {
				return nil, err
			}
			return o.buildSpec(spec)
		},
	},
	{
		Name: "ccc",
		Doc:  "cube-connected cycles over the n-cube quotient (§5.2)",
		Params: []ParamSpec{
			{Name: "n", Min: 2, Max: 16, Default: 3, Doc: "cube dimension; N = n·2^n nodes"},
		},
		build: func(p map[string]int, o Options) (*layout.Layout, error) {
			cfg, err := cluster.CCCConfig(p["n"], o.layers(), o.NodeSide)
			if err != nil {
				return nil, err
			}
			return o.buildCluster(cfg)
		},
	},
	{
		Name: "rh",
		Doc:  "Ziavras reduced hypercube: CCC with hypercube clusters (§5.2)",
		Params: []ParamSpec{
			{Name: "n", Min: 2, Max: 64, Default: 4, Doc: "cluster size; a power of two"},
		},
		build: func(p map[string]int, o Options) (*layout.Layout, error) {
			if !powerOfTwo(p["n"]) {
				return nil, &ParamError{Family: "rh", Param: "n", Value: p["n"], Reason: "must be a power of two >= 2"}
			}
			cfg, err := cluster.ReducedHypercubeConfig(p["n"], o.layers(), o.NodeSide)
			if err != nil {
				return nil, err
			}
			return o.buildCluster(cfg)
		},
	},
	{
		Name: "hsn",
		Doc:  "hierarchical swap network with K_r nuclei (§4.3)",
		Params: []ParamSpec{
			{Name: "levels", Min: 2, Max: 6, Default: 2, Doc: "hierarchy levels"},
			{Name: "r", Min: 2, Max: 16, Default: 3, Doc: "nucleus size; N = r^levels nodes"},
		},
		build: func(p map[string]int, o Options) (*layout.Layout, error) {
			cfg, err := cluster.HSNConfig(p["levels"], p["r"], o.layers(), o.NodeSide, nil)
			if err != nil {
				return nil, err
			}
			return o.buildCluster(cfg)
		},
	},
	{
		Name: "hhn",
		Doc:  "hierarchical hypercube network: HSN with 2^m-node hypercube nuclei (§4.3)",
		Params: []ParamSpec{
			{Name: "levels", Min: 2, Max: 6, Default: 2, Doc: "hierarchy levels"},
			{Name: "m", Min: 1, Max: 5, Default: 2, Doc: "nucleus dimension; nuclei hold 2^m nodes"},
		},
		build: func(p map[string]int, o Options) (*layout.Layout, error) {
			cfg, err := cluster.HHNConfig(p["levels"], p["m"], o.layers(), o.NodeSide)
			if err != nil {
				return nil, err
			}
			return o.buildCluster(cfg)
		},
	},
	{
		Name: "butterfly",
		Doc:  "wrapped butterfly with 2^m rows and m levels (§4.2)",
		Params: []ParamSpec{
			{Name: "m", Min: 3, Max: 12, Default: 3, Doc: "levels; N = m·2^m nodes"},
		},
		build: func(p map[string]int, o Options) (*layout.Layout, error) {
			cfg, err := cluster.ButterflyConfig(p["m"], o.layers(), o.NodeSide)
			if err != nil {
				return nil, err
			}
			return o.buildCluster(cfg)
		},
	},
	{
		Name: "isn",
		Doc:  "indirect swap network: butterfly with single cross links (§4.3)",
		Params: []ParamSpec{
			{Name: "m", Min: 3, Max: 12, Default: 3, Doc: "levels; N = m·2^m nodes"},
		},
		build: func(p map[string]int, o Options) (*layout.Layout, error) {
			cfg, err := cluster.ISNConfig(p["m"], o.layers(), o.NodeSide)
			if err != nil {
				return nil, err
			}
			return o.buildCluster(cfg)
		},
	},
	{
		Name: "clusterc",
		Doc:  "k-ary n-cube cluster-c with c-node hypercube clusters (§3.2)",
		Params: []ParamSpec{
			{Name: "k", Min: 2, Max: 16, Default: 3, Doc: "torus radix"},
			{Name: "n", Min: 1, Max: 6, Default: 2, Doc: "torus dimensions"},
			{Name: "c", Min: 2, Max: 16, Default: 2, Doc: "cluster size; a power of two"},
		},
		build: func(p map[string]int, o Options) (*layout.Layout, error) {
			if !powerOfTwo(p["c"]) {
				return nil, &ParamError{Family: "clusterc", Param: "c", Value: p["c"], Reason: "must be a power of two >= 2"}
			}
			cfg, err := cluster.KAryClusterCConfig(p["k"], p["n"], p["c"], o.layers(), o.NodeSide)
			if err != nil {
				return nil, err
			}
			return o.buildCluster(cfg)
		},
	},
	{
		Name: "star",
		Doc:  "star graph via the last-symbol decomposition (§4.3 extension)",
		Params: []ParamSpec{
			{Name: "n", Min: 3, Max: 7, Default: 4, Doc: "symbols; N = n! nodes"},
		},
		build: func(p map[string]int, o Options) (*layout.Layout, error) {
			cfg, err := cluster.StarConfig(p["n"], o.layers(), o.NodeSide)
			if err != nil {
				return nil, err
			}
			return o.buildCluster(cfg)
		},
	},
	{
		Name: "pancake",
		Doc:  "pancake graph via the last-symbol decomposition (§4.3 extension)",
		Params: []ParamSpec{
			{Name: "n", Min: 3, Max: 7, Default: 4, Doc: "symbols; N = n! nodes"},
		},
		build: func(p map[string]int, o Options) (*layout.Layout, error) {
			cfg, err := cluster.PancakeConfig(p["n"], o.layers(), o.NodeSide)
			if err != nil {
				return nil, err
			}
			return o.buildCluster(cfg)
		},
	},
	{
		Name: "bubblesort",
		Doc:  "bubble-sort graph via the last-symbol decomposition (§4.3 extension)",
		Params: []ParamSpec{
			{Name: "n", Min: 3, Max: 7, Default: 4, Doc: "symbols; N = n! nodes"},
		},
		build: func(p map[string]int, o Options) (*layout.Layout, error) {
			cfg, err := cluster.BubbleSortConfig(p["n"], o.layers(), o.NodeSide)
			if err != nil {
				return nil, err
			}
			return o.buildCluster(cfg)
		},
	},
	{
		Name: "transposition",
		Doc:  "transposition network via the last-symbol decomposition (§4.3 extension)",
		Params: []ParamSpec{
			{Name: "n", Min: 3, Max: 7, Default: 4, Doc: "symbols; N = n! nodes"},
		},
		build: func(p map[string]int, o Options) (*layout.Layout, error) {
			cfg, err := cluster.TranspositionConfig(p["n"], o.layers(), o.NodeSide)
			if err != nil {
				return nil, err
			}
			return o.buildCluster(cfg)
		},
	},
	{
		Name: "scc",
		Doc:  "star-connected cycles (the paper's future-work family)",
		Params: []ParamSpec{
			{Name: "n", Min: 4, Max: 6, Default: 4, Doc: "symbols; N = n!·(n−1) nodes"},
		},
		build: func(p map[string]int, o Options) (*layout.Layout, error) {
			cfg, err := cluster.SCCConfig(p["n"], o.layers(), o.NodeSide)
			if err != nil {
				return nil, err
			}
			return o.buildCluster(cfg)
		},
	},
}

// Families enumerates the registered layout families in name order. The
// returned slice and its parameter lists are copies; callers may modify them
// freely.
func Families() []FamilyInfo {
	out := make([]FamilyInfo, len(families))
	copy(out, families)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	for i := range out {
		out[i].Params = append([]ParamSpec(nil), out[i].Params...)
		out[i].build = nil // the copy is descriptive; building goes through BuildFamily
	}
	return out
}

// familyByName returns the registered family, or nil for an unknown name.
func familyByName(name string) *FamilyInfo {
	for i := range families {
		if families[i].Name == name {
			return &families[i]
		}
	}
	return nil
}

// resolveParams applies the family's defaults to the assigned parameters and
// validates every assignment, returning the complete parameter map (one
// entry per registered parameter). Unknown names and out-of-range values are
// rejected with a *ParamError. Validation runs in sorted name order: params
// is a map, and with several bad parameters the returned error must not
// depend on iteration order.
func (f *FamilyInfo) resolveParams(params map[string]int) (map[string]int, error) {
	p := make(map[string]int, len(f.Params))
	for _, ps := range f.Params {
		p[ps.Name] = ps.Default
	}
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := params[name]
		ps := f.paramSpec(name)
		if ps == nil {
			return nil, &ParamError{Family: f.Name, Param: name, Value: v,
				Reason: fmt.Sprintf("is not a parameter of this family (has %s)", f.paramNames())}
		}
		if v < ps.Min || v > ps.Max {
			return nil, &ParamError{Family: f.Name, Param: name, Value: v,
				Reason: fmt.Sprintf("outside range [%d, %d]", ps.Min, ps.Max)}
		}
		p[name] = v
	}
	return p, nil
}

// BuildFamily constructs a layout by registry name. Parameters omitted from
// spec.Params take their defaults; unknown families, unknown parameter
// names, out-of-range values, and invalid Options are rejected with a
// *ParamError.
func BuildFamily(spec FamilySpec, o Options) (*Layout, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	fam := familyByName(spec.Name)
	if fam == nil {
		return nil, &ParamError{Family: spec.Name, Reason: "is not a registered family; see Families()"}
	}
	p, err := fam.resolveParams(spec.Params)
	if err != nil {
		return nil, err
	}
	return fam.build(p, o)
}

// uniformInts reports whether vs is non-empty with every element equal, in
// which case a (value, count) pair loses no information — the shape the
// uniform registry families take.
func uniformInts(vs []int) bool {
	if len(vs) == 0 {
		return false
	}
	for _, v := range vs[1:] {
		if v != vs[0] {
			return false
		}
	}
	return true
}

// registryParam returns a registered family's parameter spec. Both names
// must exist — the callers are the typed wrappers over registered families,
// so a miss is a programming error, not an input error.
func registryParam(family, param string) *ParamSpec {
	for i := range families {
		if families[i].Name == family {
			if ps := families[i].paramSpec(param); ps != nil {
				return ps
			}
			break
		}
	}
	panic(fmt.Sprintf("mlvlsi: no registered parameter %s.%s", family, param))
}

// registryRange checks v against a registered parameter's range, reporting
// violations with the identical *ParamError BuildFamily would return. The
// typed wrappers use it for argument shapes the uniform registry families
// cannot express (mixed mesh extents, mixed GHC radices, huge seeds).
func registryRange(family, param string, v int) error {
	ps := registryParam(family, param)
	if v < ps.Min || v > ps.Max {
		return &ParamError{Family: family, Param: param, Value: v,
			Reason: fmt.Sprintf("outside range [%d, %d]", ps.Min, ps.Max)}
	}
	return nil
}

func (f *FamilyInfo) paramSpec(name string) *ParamSpec {
	for i := range f.Params {
		if f.Params[i].Name == name {
			return &f.Params[i]
		}
	}
	return nil
}

func (f *FamilyInfo) paramNames() string {
	s := ""
	for i, ps := range f.Params {
		if i > 0 {
			s += ", "
		}
		s += ps.Name
	}
	return s
}
