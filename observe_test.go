package mlvlsi_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"mlvlsi"
)

// observedRun builds and verifies the 10-cube at L=4 with an in-memory
// sink attached, returning the sink and the flushed counter snapshot.
func observedRun(t *testing.T, workers int) (*mlvlsi.MetricsSink, mlvlsi.ObsMetrics, *mlvlsi.Layout) {
	t.Helper()
	sink := mlvlsi.NewMetricsSink()
	o := mlvlsi.Options{Layers: 4, Workers: workers, Observer: mlvlsi.NewObserver(sink)}
	lay, err := mlvlsi.Hypercube(10, o)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	v, err := mlvlsi.VerifyLayout(lay, o)
	if err != nil || len(v) > 0 {
		t.Fatalf("verify: %v, %d violations", err, len(v))
	}
	return sink, o.Observer.Flush(), lay
}

// TestObserverSpanTree is the tentpole acceptance check: an observed
// Hypercube(10, L=4) run produces a span tree covering every pipeline
// phase, with children correctly linked to their parents.
func TestObserverSpanTree(t *testing.T) {
	sink, m, lay := observedRun(t, 0)

	span := func(name string) mlvlsi.SpanRecord {
		s, ok := sink.Span(name)
		if !ok {
			t.Fatalf("no %q span in %d recorded spans", name, len(sink.Spans()))
		}
		return s
	}
	build, verify := span("build"), span("verify")
	if build.Parent != 0 || verify.Parent != 0 {
		t.Errorf("build/verify are not roots: parents %d, %d", build.Parent, verify.Parent)
	}
	for _, phase := range []string{"placement", "routing", "realization"} {
		if got := span(phase).Parent; got != build.ID {
			t.Errorf("%s parent = %d, want build's id %d", phase, got, build.ID)
		}
	}
	for _, phase := range []string{"measure", "walk"} {
		if got := span(phase).Parent; got != verify.ID {
			t.Errorf("%s parent = %d, want verify's id %d", phase, got, verify.ID)
		}
	}
	// Phase spans nest inside their parents in time as well as by link.
	for _, phase := range []string{"placement", "routing", "realization"} {
		s := span(phase)
		if s.Start < build.Start || s.Start+s.Dur > build.Start+build.Dur {
			t.Errorf("%s [%v, +%v] escapes build [%v, +%v]", phase, s.Start, s.Dur, build.Start, build.Dur)
		}
	}

	if got := m.Get(mlvlsi.CounterWiresRealized); got != int64(len(lay.Wires)) {
		t.Errorf("wires_realized = %d, want %d", got, len(lay.Wires))
	}
	if m.Get(mlvlsi.CounterUnitEdgesChecked) == 0 {
		t.Errorf("unit_edges_checked = 0 after a verify")
	}
	if d, s := m.Get(mlvlsi.CounterDenseChecks), m.Get(mlvlsi.CounterSparseChecks); d+s != 1 {
		t.Errorf("dense+sparse checks = %d+%d, want exactly one path taken", d, s)
	}
	if m.Get(mlvlsi.CounterCellsPlanned) == 0 {
		t.Errorf("cells_planned = 0 after a build")
	}
}

// TestCounterTotalsDeterministicAcrossWorkers pins the ClassWork contract:
// work-derived counter totals are identical for every worker count, while
// the worker_count gauge reflects the configuration.
func TestCounterTotalsDeterministicAcrossWorkers(t *testing.T) {
	_, m1, _ := observedRun(t, 1)
	_, m4, _ := observedRun(t, 4)

	for _, c := range []mlvlsi.Counter{
		mlvlsi.CounterWiresRealized,
		mlvlsi.CounterUnitEdgesChecked,
		mlvlsi.CounterDenseChecks,
		mlvlsi.CounterSparseChecks,
		mlvlsi.CounterCellsPlanned,
		mlvlsi.CounterCellsAllocated,
	} {
		if m1.Get(c) != m4.Get(c) {
			t.Errorf("%s: workers=1 gives %d, workers=4 gives %d", c, m1.Get(c), m4.Get(c))
		}
	}
	if m1.Get(mlvlsi.CounterWorkerCount) != 1 {
		t.Errorf("worker_count with Workers=1 is %d", m1.Get(mlvlsi.CounterWorkerCount))
	}
	if m4.Get(mlvlsi.CounterWorkerCount) != 4 {
		t.Errorf("worker_count with Workers=4 is %d", m4.Get(mlvlsi.CounterWorkerCount))
	}
}

// TestTraceSinkEndToEnd writes a trace through the public API and checks it
// against the validator that gates the -trace flags.
func TestTraceSinkEndToEnd(t *testing.T) {
	var sb strings.Builder
	sink := mlvlsi.NewTraceSink(&sb)
	o := mlvlsi.Options{Layers: 4, Observer: mlvlsi.NewObserver(sink)}
	lay, err := mlvlsi.Hypercube(6, o)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if v, err := mlvlsi.VerifyLayout(lay, o); err != nil || len(v) > 0 {
		t.Fatalf("verify: %v, %d violations", err, len(v))
	}
	o.Observer.Flush()
	if err := sink.Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}
	if err := mlvlsi.ValidateTrace([]byte(sb.String())); err != nil {
		t.Fatalf("trace invalid: %v\n%s", err, sb.String())
	}
}

// TestObserverDoesNotChangeResults: the same layout and violations with and
// without an observer attached.
func TestObserverDoesNotChangeResults(t *testing.T) {
	plain, err := mlvlsi.Hypercube(8, mlvlsi.Options{Layers: 4})
	if err != nil {
		t.Fatal(err)
	}
	o := mlvlsi.Options{Layers: 4, Observer: mlvlsi.NewObserver()}
	observed, err := mlvlsi.Hypercube(8, o)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats() != observed.Stats() {
		t.Fatalf("observer changed the layout: %v vs %v", plain.Stats(), observed.Stats())
	}
	for i := range plain.Wires {
		if len(plain.Wires[i].Path) != len(observed.Wires[i].Path) {
			t.Fatalf("observer changed wire %d", i)
		}
	}
}

// TestRegistryWrapperFamilies pins the satellite API contract: the typed
// Mesh / GeneralizedHypercube / EnhancedCube constructors are thin wrappers
// over the mesh / ghc / enhanced registry families.
func TestRegistryWrapperFamilies(t *testing.T) {
	o := mlvlsi.Options{Layers: 4}

	viaMesh, err := mlvlsi.Mesh([]int{3, 3}, o)
	if err != nil {
		t.Fatal(err)
	}
	viaFam, err := mlvlsi.BuildFamily(mlvlsi.FamilySpec{Name: "mesh", Params: map[string]int{"d": 2, "n": 3}}, o)
	if err != nil {
		t.Fatal(err)
	}
	if viaMesh.Stats() != viaFam.Stats() {
		t.Errorf("Mesh != registry mesh: %v vs %v", viaMesh.Stats(), viaFam.Stats())
	}

	viaGHC, err := mlvlsi.GeneralizedHypercube([]int{4, 4}, o)
	if err != nil {
		t.Fatal(err)
	}
	viaFam, err = mlvlsi.BuildFamily(mlvlsi.FamilySpec{Name: "ghc", Params: map[string]int{"r": 4, "n": 2}}, o)
	if err != nil {
		t.Fatal(err)
	}
	if viaGHC.Stats() != viaFam.Stats() {
		t.Errorf("GeneralizedHypercube != registry ghc: %v vs %v", viaGHC.Stats(), viaFam.Stats())
	}

	viaEnh, err := mlvlsi.EnhancedCube(5, 7, o)
	if err != nil {
		t.Fatal(err)
	}
	viaFam, err = mlvlsi.BuildFamily(mlvlsi.FamilySpec{Name: "enhanced", Params: map[string]int{"n": 5, "seed": 7}}, o)
	if err != nil {
		t.Fatal(err)
	}
	if viaEnh.Stats() != viaFam.Stats() {
		t.Errorf("EnhancedCube != registry enhanced: %v vs %v", viaEnh.Stats(), viaFam.Stats())
	}

	// Out-of-range parameters reject with the registry's *ParamError even on
	// the wrapper paths the uniform families cannot express.
	var pe *mlvlsi.ParamError
	if _, err := mlvlsi.Mesh([]int{3, 100}, o); !errors.As(err, &pe) || pe.Family != "mesh" || pe.Param != "n" {
		t.Errorf("Mesh mixed out-of-range: %v", err)
	}
	if _, err := mlvlsi.Mesh(nil, o); !errors.As(err, &pe) || pe.Family != "mesh" || pe.Param != "d" {
		t.Errorf("Mesh empty dims: %v", err)
	}
	if _, err := mlvlsi.GeneralizedHypercube([]int{3, 99}, o); !errors.As(err, &pe) || pe.Family != "ghc" || pe.Param != "r" {
		t.Errorf("GHC mixed out-of-range: %v", err)
	}
	if _, err := mlvlsi.EnhancedCube(99, 1, o); !errors.As(err, &pe) || pe.Family != "enhanced" || pe.Param != "n" {
		t.Errorf("EnhancedCube bad n: %v", err)
	}
	// Mixed shapes and huge seeds still build via the direct paths.
	if _, err := mlvlsi.Mesh([]int{2, 3, 4}, o); err != nil {
		t.Errorf("mixed mesh: %v", err)
	}
	if _, err := mlvlsi.GeneralizedHypercube([]int{2, 3}, o); err != nil {
		t.Errorf("mixed ghc: %v", err)
	}
	if _, err := mlvlsi.EnhancedCube(5, 1<<40, o); err != nil {
		t.Errorf("huge-seed enhanced cube: %v", err)
	}
	// The huge-seed path rejects bad n the same way.
	if _, err := mlvlsi.EnhancedCube(99, 1<<40, o); !errors.As(err, &pe) || pe.Family != "enhanced" || pe.Param != "n" {
		t.Errorf("huge-seed EnhancedCube bad n: %v", err)
	}
}

// TestStack3DKnobs pins the satellite threading contract on the 3-D
// constructors: Workers/Context/MaxCells apply, and unsupported combos are
// rejected with a typed *ParamError.
func TestStack3DKnobs(t *testing.T) {
	var pe *mlvlsi.ParamError

	// FoldedRows has no meaning for the binary cube.
	if _, err := mlvlsi.Hypercube3D(6, 2, mlvlsi.Options{Layers: 4, FoldedRows: true}); !errors.As(err, &pe) || pe.Param != "FoldedRows" {
		t.Errorf("FoldedRows on Hypercube3D: %v", err)
	}
	// An explicit node side too small for the elevator columns.
	if _, err := mlvlsi.Hypercube3D(6, 2, mlvlsi.Options{Layers: 4, NodeSide: 1}); !errors.As(err, &pe) || pe.Param != "NodeSide" {
		t.Errorf("tiny NodeSide on Hypercube3D: %v", err)
	}
	// A canceled context aborts the build.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mlvlsi.Hypercube3D(6, 2, mlvlsi.Options{Layers: 4, Context: ctx}); !errors.Is(err, mlvlsi.ErrCanceled) {
		t.Errorf("canceled Hypercube3D: %v", err)
	}
	if _, err := mlvlsi.KAryNCube3D(3, 3, 1, mlvlsi.Options{Layers: 2, Context: ctx}); !errors.Is(err, mlvlsi.ErrCanceled) {
		t.Errorf("canceled KAryNCube3D: %v", err)
	}
	// MaxCells budgets the whole stack.
	var be *mlvlsi.BudgetError
	if _, err := mlvlsi.Hypercube3D(6, 2, mlvlsi.Options{Layers: 4, MaxCells: 10}); !errors.As(err, &be) {
		t.Fatalf("tiny stack budget: %v", err)
	}
	if be.Cells <= 0 || be.Budget != 10 {
		t.Errorf("budget error fields: %+v", be)
	}
	// A generous budget, explicit workers, and an observer build fine and
	// match the default build.
	sink := mlvlsi.NewMetricsSink()
	s, err := mlvlsi.Hypercube3D(6, 2, mlvlsi.Options{
		Layers: 4, Workers: 2, MaxCells: be.Cells, Observer: mlvlsi.NewObserver(sink),
	})
	if err != nil {
		t.Fatalf("knobbed Hypercube3D: %v", err)
	}
	plain, err := mlvlsi.Hypercube3D(6, 2, mlvlsi.Options{Layers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats() != plain.Stats() {
		t.Errorf("knobs changed the stack: %v vs %v", s.Stats(), plain.Stats())
	}
	if _, ok := sink.Span("stack"); !ok {
		t.Errorf("no stack span recorded")
	}
	if v := s.Verify(); len(v) > 0 {
		t.Errorf("knobbed stack illegal: %v", v[0])
	}
}

// TestGenericLayoutKnobs: the generic router honors the cross-cutting
// options too.
func TestGenericLayoutKnobs(t *testing.T) {
	ring := func() *mlvlsi.GenericGraph {
		g := mlvlsi.NewGraph("ring16", 16)
		for i := 0; i < 16; i++ {
			g.AddLink(i, (i+1)%16)
		}
		return g
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mlvlsi.GenericLayout(ring(), mlvlsi.Options{Layers: 4, Context: ctx}); !errors.Is(err, mlvlsi.ErrCanceled) {
		t.Errorf("canceled GenericLayout: %v", err)
	}
	var be *mlvlsi.BudgetError
	if _, err := mlvlsi.GenericLayout(ring(), mlvlsi.Options{Layers: 4, MaxCells: 5}); !errors.As(err, &be) {
		t.Errorf("tiny generic budget: %v", err)
	}
	var pe *mlvlsi.ParamError
	if _, err := mlvlsi.GenericLayout(ring(), mlvlsi.Options{Layers: 4, Workers: -1}); !errors.As(err, &pe) || pe.Param != "Workers" {
		t.Errorf("bad Workers on GenericLayout: %v", err)
	}
	sink := mlvlsi.NewMetricsSink()
	lay, err := mlvlsi.GenericLayout(ring(), mlvlsi.Options{Layers: 4, Workers: 2, Observer: mlvlsi.NewObserver(sink)})
	if err != nil {
		t.Fatalf("knobbed GenericLayout: %v", err)
	}
	if v, err := mlvlsi.VerifyLayout(lay, mlvlsi.Options{}); err != nil || len(v) > 0 {
		t.Fatalf("generic layout illegal: %v, %d violations", err, len(v))
	}
	if _, ok := sink.Span("generic-plan"); !ok {
		t.Errorf("no generic-plan span recorded")
	}
	if _, ok := sink.Span("build"); !ok {
		t.Errorf("no build span recorded for the generic engine run")
	}
}

// TestVerifyFoldedViolations: the typed folded verifier matches VerifyLayout's
// shape and agrees with the error-joining VerifyFolded.
func TestVerifyFoldedViolations(t *testing.T) {
	base, err := mlvlsi.Hypercube(6, mlvlsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	folded, err := mlvlsi.Fold(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	v, err := mlvlsi.VerifyFoldedViolations(folded, mlvlsi.Options{Workers: 2})
	if err != nil || len(v) != 0 {
		t.Fatalf("legal fold: %v, %d violations", err, len(v))
	}
	if err := mlvlsi.VerifyFolded(folded); err != nil {
		t.Fatalf("VerifyFolded disagrees: %v", err)
	}

	// Corrupt one wire onto another's path and require both forms to report.
	folded.Wires[0].Path = folded.Wires[1].Path
	v, err = mlvlsi.VerifyFoldedViolations(folded, mlvlsi.Options{})
	if err != nil || len(v) == 0 {
		t.Fatalf("corrupted fold not caught: %v, %d violations", err, len(v))
	}
	if err := mlvlsi.VerifyFolded(folded); err == nil {
		t.Fatalf("VerifyFolded missed the corruption")
	}

	// Options validation applies here as everywhere.
	var pe *mlvlsi.ParamError
	if _, err := mlvlsi.VerifyFoldedViolations(folded, mlvlsi.Options{Workers: -1}); !errors.As(err, &pe) {
		t.Errorf("bad Options accepted: %v", err)
	}
	// And cancellation surfaces as an error, not a clean pass.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mlvlsi.VerifyFoldedViolations(folded, mlvlsi.Options{Context: ctx}); !errors.Is(err, mlvlsi.ErrCanceled) {
		t.Errorf("canceled folded verify: %v", err)
	}
}
