package mlvlsi_test

import (
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"

	"mlvlsi"
	"mlvlsi/internal/grid"
	"mlvlsi/internal/route"
)

func TestFamiliesSortedAndDocumented(t *testing.T) {
	fams := mlvlsi.Families()
	if len(fams) < 15 {
		t.Fatalf("only %d families registered", len(fams))
	}
	if !sort.SliceIsSorted(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name }) {
		t.Error("Families() not sorted by name")
	}
	for _, f := range fams {
		if f.Doc == "" {
			t.Errorf("family %s has no doc", f.Name)
		}
		if len(f.Params) == 0 {
			t.Errorf("family %s has no parameters", f.Name)
		}
		for _, p := range f.Params {
			if p.Default < p.Min || p.Default > p.Max {
				t.Errorf("family %s param %s: default %d outside [%d, %d]",
					f.Name, p.Name, p.Default, p.Min, p.Max)
			}
		}
	}
}

// TestRegistryParallelMatchesSerial is the acceptance property of the
// parallel engine: for every registered family at its (small) default size,
// the layout built with 4 workers is byte-identical to the serial build,
// the parallel checker returns exactly the serial checker's verdict, and
// MaxPathWire is worker-count-invariant.
func TestRegistryParallelMatchesSerial(t *testing.T) {
	for _, f := range mlvlsi.Families() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			spec := mlvlsi.FamilySpec{Name: f.Name}
			serialLay, err := mlvlsi.BuildFamily(spec, mlvlsi.Options{Workers: 1})
			if err != nil {
				t.Fatalf("serial build: %v", err)
			}
			parLay, err := mlvlsi.BuildFamily(spec, mlvlsi.Options{Workers: 4})
			if err != nil {
				t.Fatalf("parallel build: %v", err)
			}
			if !reflect.DeepEqual(serialLay.Wires, parLay.Wires) {
				t.Fatal("parallel build realized different wires than serial")
			}
			opts := grid.CheckOptions{Layers: serialLay.L, Discipline: true, Nodes: serialLay.Nodes}
			serialV := grid.Check(serialLay.Wires, opts)
			if len(serialV) > 0 {
				t.Fatalf("layout is illegal: %v", serialV[0])
			}
			for _, workers := range []int{1, 2, 4} {
				if v := grid.CheckParallel(serialLay.Wires, opts, workers); !reflect.DeepEqual(v, serialV) {
					t.Errorf("CheckParallel(workers=%d) = %v, serial Check = %v", workers, v, serialV)
				}
			}
			w1 := route.MaxPathWire(serialLay, 8, 1)
			for _, workers := range []int{2, 4} {
				if w := route.MaxPathWire(serialLay, 8, workers); w != w1 {
					t.Errorf("MaxPathWire(workers=%d) = %d, serial = %d", workers, w, w1)
				}
			}
		})
	}
}

func TestBuildFamilyRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		spec mlvlsi.FamilySpec
		o    mlvlsi.Options
		want string // substring of the ParamError
	}{
		{"unknown family", mlvlsi.FamilySpec{Name: "escher"}, mlvlsi.Options{}, "not a registered family"},
		{"unknown param", mlvlsi.FamilySpec{Name: "hypercube", Params: map[string]int{"q": 3}}, mlvlsi.Options{}, "not a parameter"},
		{"out of range", mlvlsi.FamilySpec{Name: "star", Params: map[string]int{"n": 9}}, mlvlsi.Options{}, "outside range"},
		{"below range", mlvlsi.FamilySpec{Name: "ccc", Params: map[string]int{"n": 1}}, mlvlsi.Options{}, "outside range"},
		{"not power of two", mlvlsi.FamilySpec{Name: "rh", Params: map[string]int{"n": 6}}, mlvlsi.Options{}, "power of two"},
		{"negative layers", mlvlsi.FamilySpec{Name: "hypercube"}, mlvlsi.Options{Layers: -1}, "Layers"},
		{"negative node side", mlvlsi.FamilySpec{Name: "hypercube"}, mlvlsi.Options{NodeSide: -3}, "NodeSide"},
		{"negative workers", mlvlsi.FamilySpec{Name: "hypercube"}, mlvlsi.Options{Workers: -2}, "Workers"},
	}
	for _, c := range cases {
		lay, err := mlvlsi.BuildFamily(c.spec, c.o)
		if err == nil {
			t.Errorf("%s: no error (built %v)", c.name, lay.Name)
			continue
		}
		var pe *mlvlsi.ParamError
		if !errors.As(err, &pe) {
			t.Errorf("%s: error %T is not *ParamError: %v", c.name, err, err)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.want)
		}
	}
}

func TestConstructorsValidateOptions(t *testing.T) {
	var pe *mlvlsi.ParamError
	if _, err := mlvlsi.Hypercube(4, mlvlsi.Options{Layers: -2}); !errors.As(err, &pe) {
		t.Errorf("Hypercube accepted Layers=-2: %v", err)
	}
	if _, err := mlvlsi.Mesh([]int{3, 3}, mlvlsi.Options{Workers: -1}); !errors.As(err, &pe) {
		t.Errorf("Mesh accepted Workers=-1: %v", err)
	}
	if _, err := mlvlsi.Product("p", mlvlsi.Ring(4), mlvlsi.Ring(4), mlvlsi.Options{NodeSide: -1}); !errors.As(err, &pe) {
		t.Errorf("Product accepted NodeSide=-1: %v", err)
	}
}

func TestBuildFamilyDefaultsMatchConstructors(t *testing.T) {
	// The thin wrappers and the registry must produce identical layouts.
	viaRegistry, err := mlvlsi.BuildFamily(
		mlvlsi.FamilySpec{Name: "hsn", Params: map[string]int{"levels": 3, "r": 3}},
		mlvlsi.Options{Layers: 4})
	if err != nil {
		t.Fatal(err)
	}
	viaWrapper, err := mlvlsi.HSN(3, 3, mlvlsi.Options{Layers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaRegistry.Wires, viaWrapper.Wires) {
		t.Error("registry and constructor builds differ")
	}
}

func TestVerifyFoldedReportsAllViolations(t *testing.T) {
	lay, err := mlvlsi.Hypercube(4, mlvlsi.Options{Layers: 2})
	if err != nil {
		t.Fatal(err)
	}
	folded, err := mlvlsi.Fold(lay, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := mlvlsi.VerifyFolded(folded); err != nil {
		t.Fatalf("legal folded layout rejected: %v", err)
	}
	// Corrupt the layout with two independent overlaps; the error must
	// report both, not just the first.
	corrupted := *folded
	corrupted.Wires = append(append([]grid.Wire(nil), folded.Wires...),
		grid.Wire{ID: len(folded.Wires), U: -1, V: -1, Path: append([]grid.Point(nil), folded.Wires[0].Path...)},
		grid.Wire{ID: len(folded.Wires) + 1, U: -1, V: -1, Path: append([]grid.Point(nil), folded.Wires[1].Path...)},
	)
	err = mlvlsi.VerifyFolded(&corrupted)
	if err == nil {
		t.Fatal("corrupted layout passed VerifyFolded")
	}
	joined, ok := err.(interface{ Unwrap() []error })
	if !ok {
		t.Fatalf("error %T does not unwrap to multiple violations", err)
	}
	if n := len(joined.Unwrap()); n < 2 {
		t.Errorf("VerifyFolded joined %d violations, want >= 2", n)
	}
}
